#include "assign/baselines.h"

#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/hgos.h"
#include "assign/lp_hta.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

workload::Scenario scenario(std::uint64_t seed, std::size_t tasks = 60) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = 20;
  cfg.num_base_stations = 4;
  return workload::make_scenario(cfg);
}

TEST(AllToCloudTest, EverythingGoesToCloud) {
  const auto s = scenario(1);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = AllToCloud().assign(inst);
  EXPECT_EQ(a.count(Decision::kCloud), inst.num_tasks());
  const Metrics m = evaluate(inst, a);
  EXPECT_EQ(m.on_cloud, inst.num_tasks());
}

TEST(AllOffloadTest, NothingRunsLocally) {
  const auto s = scenario(2);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = AllOffload().assign(inst);
  EXPECT_EQ(a.count(Decision::kLocal), 0u);
  EXPECT_EQ(a.count(Decision::kCancelled), 0u);
  EXPECT_GT(a.count(Decision::kEdge), 0u);  // stations absorb some tasks
}

TEST(AllOffloadTest, RespectsStationCapacity) {
  const auto s = scenario(3);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = AllOffload().assign(inst);
  const mec::Topology& topo = inst.topology();
  std::vector<double> load(topo.num_base_stations(), 0.0);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    if (a.decisions[t] == Decision::kEdge) {
      load[topo.device(inst.task(t).id.user).base_station] +=
          inst.task(t).resource;
    }
  }
  for (std::size_t b = 0; b < topo.num_base_stations(); ++b) {
    EXPECT_LE(load[b], topo.base_station(b).max_resource + 1e-9);
  }
}

TEST(AllOffloadTest, UsesLessEnergyThanAllToCloud) {
  const auto s = scenario(4, 100);
  const HtaInstance inst(s.topology, s.tasks);
  const Metrics cloud = evaluate(inst, AllToCloud().assign(inst));
  const Metrics off = evaluate(inst, AllOffload().assign(inst));
  EXPECT_LT(off.total_energy_j, cloud.total_energy_j);
}

TEST(HgosTest, PlacesEveryTask) {
  const auto s = scenario(5);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = Hgos().assign(inst);
  EXPECT_EQ(a.cancelled(), 0u);
}

TEST(HgosTest, RespectsCapacitiesButNotDeadlines) {
  const auto s = scenario(6, 120);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = Hgos().assign(inst);
  const FeasibilityReport rep = check_feasibility(inst, a);
  // Any violation HGOS produces must be a deadline violation, never a
  // capacity violation.
  for (const std::string& p : rep.problems) {
    EXPECT_NE(p.find("deadline"), std::string::npos) << p;
  }
}

TEST(HgosTest, EnergyCloseToLpHtaButMoreViolations) {
  // The reproduction target of Figs. 2-3: HGOS tracks LP-HTA's energy but
  // misses far more deadlines. Averaged over seeds to avoid flakiness.
  double hgos_energy = 0.0, lp_energy = 0.0;
  double hgos_unsat = 0.0, lp_unsat = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = scenario(seed, 100);
    const HtaInstance inst(s.topology, s.tasks);
    const Metrics mh = evaluate(inst, Hgos().assign(inst));
    const Metrics ml = evaluate(inst, LpHta().assign(inst));
    hgos_energy += mh.total_energy_j;
    lp_energy += ml.total_energy_j;
    hgos_unsat += mh.unsatisfied_rate();
    lp_unsat += ml.unsatisfied_rate();
  }
  EXPECT_LT(hgos_energy, 2.0 * lp_energy);   // same order of magnitude
  EXPECT_GT(hgos_unsat, lp_unsat);           // but worse deadline behaviour
}

TEST(RandomAssignTest, DeterministicPerSeedAndCapacityFeasible) {
  const auto s = scenario(7);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = RandomAssign(42).assign(inst);
  const Assignment b = RandomAssign(42).assign(inst);
  EXPECT_EQ(a.decisions, b.decisions);
  const FeasibilityReport rep = check_feasibility(inst, a);
  for (const std::string& p : rep.problems) {
    EXPECT_NE(p.find("deadline"), std::string::npos) << p;
  }
}

TEST(LocalFirstTest, FeasibleByConstruction) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = scenario(seed);
    const HtaInstance inst(s.topology, s.tasks);
    const Assignment a = LocalFirst().assign(inst);
    EXPECT_TRUE(check_feasibility(inst, a).ok) << "seed " << seed;
  }
}

TEST(AssignerNames, AreStable) {
  EXPECT_EQ(AllToCloud().name(), "AllToC");
  EXPECT_EQ(AllOffload().name(), "AllOffload");
  EXPECT_EQ(Hgos().name(), "HGOS");
  EXPECT_EQ(RandomAssign().name(), "Random");
  EXPECT_EQ(LocalFirst().name(), "LocalFirst");
  EXPECT_EQ(LpHta().name(), "LP-HTA");
}

}  // namespace
}  // namespace mecsched::assign
