// Presolve/equilibration wired into LP-HTA must not change the result:
// both transforms preserve the LP optimum, so Step 3's rounding sees the
// same fractional matrix (up to degenerate ties, which the fixed seeds
// below avoid).
#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/lp_hta.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

class HygieneOptions : public ::testing::TestWithParam<int> {};

TEST_P(HygieneOptions, SameEnergyWithAndWithoutHygiene) {
  workload::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam()) * 37 + 11;
  cfg.num_tasks = 60;
  cfg.num_devices = 15;
  cfg.num_base_stations = 3;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);

  LpHtaOptions plain;
  LpHtaOptions with_presolve;
  with_presolve.presolve = true;
  LpHtaOptions with_scaling;
  with_scaling.equilibrate = true;
  LpHtaOptions both;
  both.presolve = true;
  both.equilibrate = true;

  LpHtaReport r0, r1, r2, r3;
  const auto a0 = LpHta(plain).assign_with_report(inst, r0);
  const auto a1 = LpHta(with_presolve).assign_with_report(inst, r1);
  const auto a2 = LpHta(with_scaling).assign_with_report(inst, r2);
  const auto a3 = LpHta(both).assign_with_report(inst, r3);

  const double tol = 1e-6 * (1.0 + r0.lp_objective);
  EXPECT_NEAR(r0.lp_objective, r1.lp_objective, tol);
  EXPECT_NEAR(r0.lp_objective, r2.lp_objective, tol);
  EXPECT_NEAR(r0.lp_objective, r3.lp_objective, tol);

  // Plans must all be feasible; energies agree within LP-degeneracy slack.
  for (const auto* a : {&a0, &a1, &a2, &a3}) {
    EXPECT_TRUE(check_feasibility(inst, *a).ok);
  }
  const double e0 = evaluate(inst, a0).total_energy_j;
  for (const auto* a : {&a1, &a2, &a3}) {
    EXPECT_NEAR(evaluate(inst, *a).total_energy_j, e0, 0.05 * (1.0 + e0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HygieneOptions, ::testing::Range(0, 5));

}  // namespace
}  // namespace mecsched::assign
