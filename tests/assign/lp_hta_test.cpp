#include "assign/lp_hta.h"

#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/exact.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

workload::Scenario small_scenario(std::uint64_t seed, std::size_t tasks = 30,
                                  std::size_t devices = 10,
                                  std::size_t stations = 2) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = devices;
  cfg.num_base_stations = stations;
  return workload::make_scenario(cfg);
}

TEST(LpHtaTest, ProducesDecisionPerTask) {
  const auto s = small_scenario(1);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = LpHta().assign(inst);
  EXPECT_EQ(a.size(), inst.num_tasks());
}

TEST(LpHtaTest, SolutionIsAlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto s = small_scenario(seed, 40, 12, 3);
    const HtaInstance inst(s.topology, s.tasks);
    const Assignment a = LpHta().assign(inst);
    const FeasibilityReport rep = check_feasibility(inst, a);
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": "
                        << (rep.problems.empty() ? "" : rep.problems[0]);
  }
}

TEST(LpHtaTest, NoCancellationsWhenCapacityIsAmple) {
  workload::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.num_tasks = 40;
  cfg.device_capacity_min = 100.0;
  cfg.device_capacity_max = 100.0;
  cfg.station_capacity_per_device = 100.0;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = LpHta().assign(inst);
  EXPECT_EQ(a.cancelled(), 0u);
}

TEST(LpHtaTest, ReportTracksTheoremTwoQuantities) {
  const auto s = small_scenario(7);
  const HtaInstance inst(s.topology, s.tasks);
  LpHtaReport rep;
  const Assignment a = LpHta().assign_with_report(inst, rep);
  const Metrics m = evaluate(inst, a);

  EXPECT_GT(rep.lp_objective, 0.0);
  // Lemma 1: the rounded point (which may sit outside the LP polytope, so
  // it is not bounded below by the LP optimum) costs at most 3x it.
  EXPECT_LE(rep.rounded_energy, 3.0 * rep.lp_objective + 1e-6);
  // final_energy matches the evaluator's total.
  EXPECT_NEAR(rep.final_energy, m.total_energy_j, 1e-9);
  EXPECT_GE(rep.theorem2_bound(), 3.0);
  // Corollary 1's bound is populated and the reported bound is their min.
  EXPECT_GT(rep.corollary1_bound, 0.0);
  EXPECT_LE(rep.ratio_bound(),
            std::min(rep.theorem2_bound(), rep.corollary1_bound) + 1e-12);
}

TEST(LpHtaTest, WithinLemmaOneFactorOfLpOptimum) {
  // Lemma 1: energy after rounding <= 3 * LP optimum. Steps 4-6 may add Δ,
  // so only the *rounded* energy is bounded by 3x.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto s = small_scenario(seed, 36, 12, 3);
    const HtaInstance inst(s.topology, s.tasks);
    LpHtaReport rep;
    LpHta().assign_with_report(inst, rep);
    EXPECT_LE(rep.rounded_energy, 3.0 * rep.lp_objective + 1e-6)
        << "seed " << seed;
  }
}

TEST(LpHtaTest, MatchesExactOptimumWithinTheoremBound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto s = small_scenario(seed, 24, 8, 2);
    const HtaInstance inst(s.topology, s.tasks);
    LpHtaReport rep;
    const Assignment a = LpHta().assign_with_report(inst, rep);
    const ExactResult opt = ExactHta().solve(inst);
    if (!opt.proven_optimal) continue;  // capacity-infeasible corner

    const Metrics m = evaluate(inst, a);
    // Only compare when LP-HTA placed everything the optimum placed.
    if (a.cancelled() != opt.assignment.cancelled()) continue;
    EXPECT_GE(m.total_energy_j, opt.energy - 1e-6) << "seed " << seed;
    EXPECT_LE(m.total_energy_j, rep.ratio_bound() * opt.energy + 1e-6)
        << "seed " << seed;
  }
}

TEST(LpHtaTest, InteriorPointEngineAgreesWithSimplexEngine) {
  const auto s = small_scenario(11, 30, 10, 2);
  const HtaInstance inst(s.topology, s.tasks);
  LpHtaReport rs, ri;
  LpHta(LpHtaOptions{LpEngine::kSimplex}).assign_with_report(inst, rs);
  LpHta(LpHtaOptions{LpEngine::kInteriorPoint}).assign_with_report(inst, ri);
  // Same relaxation, so the LP optimum must agree between engines.
  EXPECT_NEAR(rs.lp_objective, ri.lp_objective,
              1e-4 * (1.0 + rs.lp_objective));
}

TEST(LpHtaTest, HopelessDeadlinesAreCancelled) {
  workload::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.num_tasks = 30;
  // slack < 1: deadlines tighter than the best achievable latency.
  cfg.deadline_slack_min = 0.01;
  cfg.deadline_slack_max = 0.05;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  LpHtaReport rep;
  const Assignment a = LpHta().assign_with_report(inst, rep);
  EXPECT_EQ(a.cancelled(), inst.num_tasks());
  EXPECT_EQ(rep.cancelled_infeasible, inst.num_tasks());
  // and the result is still "feasible": nothing placed, nothing violated
  EXPECT_TRUE(check_feasibility(inst, a).ok);
}

TEST(LpHtaTest, TinyCapacitiesForceCancellationNotInfeasibility) {
  workload::ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.num_tasks = 40;
  cfg.num_devices = 8;
  cfg.num_base_stations = 2;
  cfg.device_capacity_min = 0.0;
  cfg.device_capacity_max = 0.5;       // almost nothing fits locally
  cfg.station_capacity_per_device = 0.25;  // stations tiny too
  // make cloud latency-infeasible for many tasks: tight deadlines
  cfg.deadline_slack_min = 1.05;
  cfg.deadline_slack_max = 1.2;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = LpHta().assign(inst);
  EXPECT_TRUE(check_feasibility(inst, a).ok);
}

TEST(LpHtaTest, EmptyInstance) {
  workload::ScenarioConfig cfg;
  cfg.num_tasks = 0;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = LpHta().assign(inst);
  EXPECT_EQ(a.size(), 0u);
}

// Warm hints feed the cluster LPs a crash basis; the LP optimum — and so
// the Theorem-2 diagnostics built on it — must not move. This is the
// warm-start-equals-cold-start guarantee the sweep cache relies on.
TEST(LpHtaTest, WarmHintPreservesTheLpObjective) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = small_scenario(seed, 40, 12, 3);
    const HtaInstance inst(s.topology, s.tasks);

    LpHtaReport cold_report;
    const Assignment cold = LpHta().assign_with_report(inst, cold_report);

    // Hint with the cold solution itself (the best case) and with a plan
    // for a *different* instance (the adjacent-cell case).
    const auto other = small_scenario(seed + 100, 40, 12, 3);
    const HtaInstance other_inst(other.topology, other.tasks);
    const Assignment other_plan = LpHta().assign(other_inst);

    for (const Assignment* hint : {&cold, &other_plan}) {
      LpHtaOptions options;
      options.warm_hint = hint;
      LpHtaReport warm_report;
      const Assignment warm =
          LpHta(options).assign_with_report(inst, warm_report);
      EXPECT_NEAR(warm_report.lp_objective, cold_report.lp_objective,
                  1e-6 * (1.0 + cold_report.lp_objective))
          << "seed " << seed;
      EXPECT_TRUE(check_feasibility(inst, warm).ok) << "seed " << seed;
    }
  }
}

// A hint that is plain garbage (wrong size, all-cancel) must not break
// correctness either — it only changes the pivot path.
TEST(LpHtaTest, DegenerateWarmHintsAreHarmless) {
  const auto s = small_scenario(2);
  const HtaInstance inst(s.topology, s.tasks);
  LpHtaReport cold_report;
  LpHta().assign_with_report(inst, cold_report);

  Assignment short_hint;  // covers no tasks
  Assignment cancel_hint;
  cancel_hint.decisions.assign(inst.num_tasks(), Decision::kCancelled);
  for (const Assignment* hint : {&short_hint, &cancel_hint}) {
    LpHtaOptions options;
    options.warm_hint = hint;
    LpHtaReport warm_report;
    const Assignment warm = LpHta(options).assign_with_report(inst, warm_report);
    EXPECT_NEAR(warm_report.lp_objective, cold_report.lp_objective,
                1e-6 * (1.0 + cold_report.lp_objective));
    EXPECT_TRUE(check_feasibility(inst, warm).ok);
  }
}

// The basis kernel is an implementation detail of Step 1: the eta-file LU
// default and the dense-inverse comparator must produce the *same
// decisions* task for task (the rounding in Steps 2-6 is deterministic in
// the LP vertex, and these cluster LPs have unique optima for generic
// costs).
TEST(LpHtaTest, BasisKernelsProduceIdenticalAssignments) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto s = small_scenario(seed, 40, 12, 3);
    const HtaInstance inst(s.topology, s.tasks);

    LpHtaOptions lu;
    lu.basis = lp::BasisKernel::kEtaLu;
    LpHtaOptions dense;
    dense.basis = lp::BasisKernel::kDenseInverse;

    const Assignment a = LpHta(lu).assign(inst);
    const Assignment b = LpHta(dense).assign(inst);
    EXPECT_EQ(a.decisions, b.decisions) << "seed " << seed;
  }
}

// Pricing rules likewise: different pivot paths, same assignment.
TEST(LpHtaTest, PricingRulesProduceIdenticalAssignments) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto s = small_scenario(seed, 36, 12, 3);
    const HtaInstance inst(s.topology, s.tasks);
    const Assignment base = LpHta().assign(inst);
    for (const lp::PricingRule rule :
         {lp::PricingRule::kDevex, lp::PricingRule::kSteepestEdge}) {
      LpHtaOptions options;
      options.pricing = rule;
      const Assignment other = LpHta(options).assign(inst);
      EXPECT_EQ(base.decisions, other.decisions)
          << "seed " << seed << " rule " << static_cast<int>(rule);
    }
  }
}

}  // namespace
}  // namespace mecsched::assign
