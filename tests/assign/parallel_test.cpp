#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/lp_hta.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

TEST(ParallelLpHtaTest, ParallelAndSerialProduceIdenticalPlans) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.num_tasks = 120;
    cfg.num_devices = 30;
    cfg.num_base_stations = 6;
    const auto s = workload::make_scenario(cfg);
    const HtaInstance inst(s.topology, s.tasks);

    LpHtaOptions serial, parallel;
    parallel.parallel_clusters = true;
    LpHtaReport rs, rp;
    const Assignment a = LpHta(serial).assign_with_report(inst, rs);
    const Assignment b = LpHta(parallel).assign_with_report(inst, rp);

    EXPECT_EQ(a.decisions, b.decisions) << "seed " << seed;
    EXPECT_DOUBLE_EQ(rs.lp_objective, rp.lp_objective);
    EXPECT_DOUBLE_EQ(rs.final_energy, rp.final_energy);
    EXPECT_EQ(rs.cancelled_capacity, rp.cancelled_capacity);
  }
}

TEST(ParallelLpHtaTest, SingleClusterTakesSerialPath) {
  workload::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.num_tasks = 30;
  cfg.num_devices = 10;
  cfg.num_base_stations = 1;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  LpHtaOptions opts;
  opts.parallel_clusters = true;
  const Assignment a = LpHta(opts).assign(inst);
  EXPECT_TRUE(check_feasibility(inst, a).ok);
}

}  // namespace
}  // namespace mecsched::assign
