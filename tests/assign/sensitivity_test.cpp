#include "assign/sensitivity.h"

#include <gtest/gtest.h>

#include "assign/cluster_lp.h"
#include "lp/simplex.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

workload::Scenario scenario(std::uint64_t seed, double station_cap) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = 40;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  cfg.station_capacity_per_device = station_cap;
  // make device capacity tight so C2 rows bind
  cfg.device_capacity_min = 2.0;
  cfg.device_capacity_max = 4.0;
  return workload::make_scenario(cfg);
}

// LP optimal energy of the whole instance (sum of cluster LPs).
double lp_energy(const HtaInstance& inst) {
  double total = 0.0;
  const lp::SimplexSolver solver;
  for (std::size_t b = 0; b < inst.topology().num_base_stations(); ++b) {
    const ClusterLp c = build_cluster_lp(inst, b);
    if (c.active.empty()) continue;
    total += solver.solve(c.problem).objective;
  }
  return total;
}

TEST(SensitivityTest, PricesAreNonNegativeAndSized) {
  const auto s = scenario(1, 3.0);
  const HtaInstance inst(s.topology, s.tasks);
  const ShadowPrices sp = capacity_shadow_prices(inst);
  ASSERT_EQ(sp.device.size(), 10u);
  ASSERT_EQ(sp.station.size(), 2u);
  for (double v : sp.device) EXPECT_GE(v, 0.0);
  for (double v : sp.station) EXPECT_GE(v, 0.0);
}

TEST(SensitivityTest, SlackCapacityHasZeroPrice) {
  // Enormous capacities: no resource row binds, all prices zero.
  workload::ScenarioConfig cfg;
  cfg.seed = 2;
  cfg.num_tasks = 30;
  cfg.device_capacity_min = 1e6;
  cfg.device_capacity_max = 1e6;
  cfg.station_capacity_per_device = 1e6;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  const ShadowPrices sp = capacity_shadow_prices(inst);
  for (double v : sp.device) EXPECT_NEAR(v, 0.0, 1e-9);
  for (double v : sp.station) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(SensitivityTest, TightStationsCarryPositivePrices) {
  const auto s = scenario(3, 0.5);  // very tight stations
  const HtaInstance inst(s.topology, s.tasks);
  const ShadowPrices sp = capacity_shadow_prices(inst);
  double total_station_price = 0.0;
  for (double v : sp.station) total_station_price += v;
  EXPECT_GT(total_station_price, 0.0);
}

TEST(SensitivityTest, MatchesFiniteDifferenceOfLpOptimum) {
  // Perturb one binding station capacity by ε and compare the LP-energy
  // change against the shadow price.
  const auto s = scenario(4, 1.0);
  const HtaInstance inst(s.topology, s.tasks);
  const ShadowPrices sp = capacity_shadow_prices(inst);

  // pick the station with the largest price
  std::size_t b = sp.station[0] >= sp.station[1] ? 0u : 1u;
  if (sp.station[b] <= 0.0) GTEST_SKIP() << "no binding station row";

  const double base = lp_energy(inst);
  const double eps = 1e-4;

  // rebuild the topology with station b's capacity + eps
  std::vector<mec::Device> devices;
  for (std::size_t i = 0; i < s.topology.num_devices(); ++i) {
    devices.push_back(s.topology.device(i));
  }
  std::vector<mec::BaseStation> stations;
  for (std::size_t k = 0; k < s.topology.num_base_stations(); ++k) {
    stations.push_back(s.topology.base_station(k));
  }
  stations[b].max_resource += eps;
  const mec::Topology bumped(devices, stations, s.topology.params());
  const HtaInstance bumped_inst(bumped, s.tasks);
  const double bumped_energy = lp_energy(bumped_inst);

  const double fd_price = (base - bumped_energy) / eps;
  EXPECT_NEAR(fd_price, sp.station[b], 1e-3 * (1.0 + sp.station[b]));
}

TEST(SensitivityTest, EmptyInstanceGivesZeroPrices) {
  workload::ScenarioConfig cfg;
  cfg.num_tasks = 0;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  const ShadowPrices sp = capacity_shadow_prices(inst);
  for (double v : sp.device) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : sp.station) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace mecsched::assign
