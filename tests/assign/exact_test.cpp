#include "assign/exact.h"

#include <gtest/gtest.h>

#include "assign/baselines.h"
#include "assign/evaluator.h"
#include "assign/lp_hta.h"
#include "ilp/knapsack.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

workload::Scenario small(std::uint64_t seed, std::size_t tasks = 18) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = 6;
  cfg.num_base_stations = 2;
  return workload::make_scenario(cfg);
}

TEST(ExactHtaTest, SolutionIsFeasible) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto s = small(seed);
    const HtaInstance inst(s.topology, s.tasks);
    const ExactResult r = ExactHta().solve(inst);
    EXPECT_TRUE(check_feasibility(inst, r.assignment).ok) << "seed " << seed;
  }
}

TEST(ExactHtaTest, NeverWorseThanAnyHeuristic) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto s = small(seed);
    const HtaInstance inst(s.topology, s.tasks);
    const ExactResult opt = ExactHta().solve(inst);
    if (!opt.proven_optimal) continue;

    const LpHta lp_hta;
    const LocalFirst local_first;
    for (const Assigner* alg :
         std::initializer_list<const Assigner*>{&lp_hta, &local_first}) {
      const Assignment a = alg->assign(inst);
      // Compare on equal footing: identical placed-task sets only.
      if (a.cancelled() != opt.assignment.cancelled()) continue;
      const Metrics m = evaluate(inst, a);
      EXPECT_LE(opt.energy, m.total_energy_j + 1e-6)
          << "seed " << seed << " vs " << alg->name();
    }
  }
}

TEST(ExactHtaTest, MatchesKnapsackOnTheReductionSpecialCase) {
  // Theorem 1's special case: max_i = 0 (no local processing), T = ∞.
  // The optimal HTA then maximizes Σ (E3-E2) x2 s.t. Σ C x2 <= max_S,
  // i.e. a knapsack; cross-check the ILP against the knapsack solver.
  workload::ScenarioConfig cfg;
  cfg.seed = 21;
  cfg.num_tasks = 14;
  cfg.num_devices = 7;
  cfg.num_base_stations = 1;
  cfg.device_capacity_min = 0.0;
  cfg.device_capacity_max = 0.0;          // max_i = 0
  cfg.deadline_slack_min = 1e6;           // effectively no deadlines
  cfg.deadline_slack_max = 1e6;
  cfg.station_capacity_per_device = 0.6;  // binding station capacity
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);

  const ExactResult opt = ExactHta().solve(inst);
  ASSERT_TRUE(opt.proven_optimal);

  // Knapsack formulation.
  std::vector<double> values, weights;
  double all_cloud_energy = 0.0;
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    const double e2 = inst.energy(t, mec::Placement::kEdge);
    const double e3 = inst.energy(t, mec::Placement::kCloud);
    values.push_back(e3 - e2);
    weights.push_back(inst.task(t).resource);
    all_cloud_energy += e3;
  }
  const auto ks = ilp::knapsack_branch_bound(
      values, weights, inst.topology().base_station(0).max_resource);

  EXPECT_NEAR(opt.energy, all_cloud_energy - ks.value,
              1e-6 * (1.0 + opt.energy));
  // and no task may sit on a device (max_i = 0, resource > 0)
  EXPECT_EQ(opt.assignment.count(Decision::kLocal), 0u);
}

TEST(ExactHtaTest, AssignInterfaceMatchesSolve) {
  const auto s = small(4);
  const HtaInstance inst(s.topology, s.tasks);
  const ExactHta solver;
  const Assignment via_assign = solver.assign(inst);
  const ExactResult via_solve = solver.solve(inst);
  EXPECT_EQ(via_assign.decisions, via_solve.assignment.decisions);
}

}  // namespace
}  // namespace mecsched::assign
