// HGOS-specific behaviour: the re-implemented comparator must exhibit the
// exact blind spots the paper attributes to it — data-distribution
// blindness and deadline blindness — while still being a competent greedy.
#include "assign/hgos.h"

#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "common/units.h"
#include "mec/parameters.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

using units::gigahertz;
using units::kilobytes;

TEST(HgosBehaviourTest, PricesTasksAsIfAllDataWereLocal) {
  // Two identical tasks except one needs a large external fetch. A
  // data-aware algorithm would treat them differently; HGOS must place
  // them identically because it folds β into α when pricing.
  std::vector<mec::Device> devices = {
      {0, 0, gigahertz(1.5), mec::k4G, 10.0},
      {1, 0, gigahertz(1.5), mec::k4G, 10.0},
  };
  std::vector<mec::BaseStation> stations = {{0, gigahertz(4.0), 1.0}};
  const mec::Topology topo(devices, stations, mec::SystemParameters{});

  mec::Task local_only;
  local_only.id = {0, 0};
  local_only.local_bytes = kilobytes(1500.0);
  local_only.external_owner = 1;
  local_only.resource = 5.0;  // exceeds device cap 10? no: fits
  local_only.deadline_s = 1e9;

  mec::Task data_shared = local_only;
  data_shared.id = {1, 0};
  data_shared.local_bytes = kilobytes(1000.0);
  data_shared.external_bytes = kilobytes(500.0);  // same total volume
  data_shared.external_owner = 0;

  const HtaInstance inst(topo, {local_only, data_shared});
  const Assignment a = Hgos().assign(inst);
  EXPECT_EQ(a.decisions[0], a.decisions[1]);
}

TEST(HgosBehaviourTest, IgnoresDeadlinesEntirely) {
  // Identical workloads, one with impossible deadlines: HGOS must return
  // the very same placements (it never looks at T_ij).
  workload::ScenarioConfig cfg;
  cfg.seed = 21;
  cfg.num_tasks = 40;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  const auto relaxed = workload::make_scenario(cfg);

  auto strangled = relaxed;
  for (mec::Task& t : strangled.tasks) t.deadline_s = 1e-9;

  const HtaInstance ri(relaxed.topology, relaxed.tasks);
  const HtaInstance si(strangled.topology, strangled.tasks);
  EXPECT_EQ(Hgos().assign(ri).decisions, Hgos().assign(si).decisions);
}

TEST(HgosBehaviourTest, LargestTasksGetFirstPickOfTheEdge) {
  // With station capacity for exactly one task, the single biggest task
  // should win the slot whenever the edge is its cheapest option.
  std::vector<mec::Device> devices = {
      {0, 0, gigahertz(1.0), mec::k4G, 0.0},  // no local capacity
      {1, 0, gigahertz(1.0), mec::k4G, 0.0},
  };
  std::vector<mec::BaseStation> stations = {{0, gigahertz(4.0), 1.0}};
  const mec::Topology topo(devices, stations, mec::SystemParameters{});

  auto task = [](std::size_t user, std::size_t idx, double kb) {
    mec::Task t;
    t.id = {user, idx};
    t.local_bytes = kilobytes(kb);
    t.external_owner = user == 0 ? 1 : 0;
    t.resource = 1.0;
    t.deadline_s = 1e9;
    return t;
  };
  const HtaInstance inst(topo, {task(0, 0, 500.0), task(1, 0, 3000.0)});
  const Assignment a = Hgos().assign(inst);
  EXPECT_EQ(a.decisions[1], Decision::kEdge);   // the big one
  EXPECT_EQ(a.decisions[0], Decision::kCloud);  // the small one spills
}

}  // namespace
}  // namespace mecsched::assign
