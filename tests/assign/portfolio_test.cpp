#include "assign/portfolio.h"

#include <gtest/gtest.h>

#include "assign/baselines.h"
#include "assign/evaluator.h"
#include "assign/lp_hta.h"
#include "common/error.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

workload::Scenario scenario(std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = 40;
  cfg.num_devices = 12;
  cfg.num_base_stations = 3;
  return workload::make_scenario(cfg);
}

TEST(PortfolioTest, RejectsEmptyPortfolio) {
  EXPECT_THROW(Portfolio({}), ModelError);
}

TEST(PortfolioTest, NeverWorseThanAnySingleCandidateOnUnsatisfied) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = scenario(seed);
    const HtaInstance inst(s.topology, s.tasks);
    PortfolioReport rep;
    const Assignment plan =
        Portfolio::standard().assign_with_report(inst, rep);
    const Metrics m = evaluate(inst, plan);
    EXPECT_EQ(rep.candidates_tried, 4u);

    const std::size_t portfolio_unsat = m.cancelled + m.deadline_violations;
    const LpHta lp;
    const LocalFirst local;
    for (const Assigner* single :
         std::initializer_list<const Assigner*>{&lp, &local}) {
      const Metrics sm = evaluate(inst, single->assign(inst));
      EXPECT_LE(portfolio_unsat, sm.cancelled + sm.deadline_violations)
          << "seed " << seed << " vs " << single->name();
    }
  }
}

TEST(PortfolioTest, ReportsTheWinner) {
  const auto s = scenario(9);
  const HtaInstance inst(s.topology, s.tasks);
  PortfolioReport rep;
  const Assignment plan = Portfolio::standard().assign_with_report(inst, rep);
  EXPECT_FALSE(rep.winner.empty());
  EXPECT_NEAR(rep.winner_energy_j, evaluate(inst, plan).total_energy_j, 1e-9);
}

TEST(PortfolioTest, SingleCandidatePassesThrough) {
  const auto s = scenario(11);
  const HtaInstance inst(s.topology, s.tasks);
  Portfolio p({std::make_shared<AllToCloud>()});
  const Assignment plan = p.assign(inst);
  EXPECT_EQ(plan.count(Decision::kCloud), inst.num_tasks());
}

class ThrowingCandidate : public Assigner {
 public:
  Assignment assign(const HtaInstance&) const override {
    throw SolverError("candidate blowup");
  }
  std::string name() const override { return "Throwing"; }
};

TEST(PortfolioTest, SolverErrorCandidateIsSkipped) {
  const auto s = scenario(15);
  const HtaInstance inst(s.topology, s.tasks);
  Portfolio p({std::make_shared<ThrowingCandidate>(),
               std::make_shared<LocalFirst>()});
  PortfolioReport rep;
  const Assignment plan = p.assign_with_report(inst, rep);
  EXPECT_EQ(rep.candidates_failed, 1u);
  EXPECT_EQ(rep.candidates_tried, 1u);
  EXPECT_EQ(rep.winner, "LocalFirst");
  EXPECT_EQ(plan.size(), inst.num_tasks());
}

TEST(PortfolioTest, BudgetStarvedLpHtaStillYieldsAPlan) {
  const auto s = scenario(16);
  const HtaInstance inst(s.topology, s.tasks);
  LpHtaOptions lp;
  lp.max_lp_iterations = 1;  // forces SolverError from the LP rung
  Portfolio p({std::make_shared<LpHta>(lp), std::make_shared<LocalFirst>()});
  PortfolioReport rep;
  const Assignment plan = p.assign_with_report(inst, rep);
  EXPECT_EQ(rep.candidates_failed, 1u);
  EXPECT_EQ(rep.winner, "LocalFirst");
  EXPECT_EQ(plan.size(), inst.num_tasks());
}

TEST(PortfolioTest, AllCandidatesFailingRethrows) {
  const auto s = scenario(17);
  const HtaInstance inst(s.topology, s.tasks);
  Portfolio p({std::make_shared<ThrowingCandidate>(),
               std::make_shared<ThrowingCandidate>()});
  EXPECT_THROW(p.assign(inst), SolverError);
}

TEST(PortfolioTest, PrefersFeasibleOverInfeasibleAtEqualUnsatisfied) {
  // AllToC violates many deadlines; a portfolio with AllToC + LP-HTA must
  // pick LP-HTA.
  const auto s = scenario(13);
  const HtaInstance inst(s.topology, s.tasks);
  Portfolio p({std::make_shared<AllToCloud>(), std::make_shared<LpHta>()});
  PortfolioReport rep;
  p.assign_with_report(inst, rep);
  EXPECT_EQ(rep.winner, "LP-HTA");
}

}  // namespace
}  // namespace mecsched::assign
