#include "assign/evaluator.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "mec/parameters.h"

namespace mecsched::assign {
namespace {

using units::gigahertz;

mec::Topology tiny_topology(double device_cap = 10.0, double station_cap = 10.0) {
  std::vector<mec::Device> devices = {
      {0, 0, gigahertz(1.0), mec::k4G, device_cap},
      {1, 0, gigahertz(2.0), mec::kWiFi, device_cap},
  };
  std::vector<mec::BaseStation> stations = {{0, gigahertz(4.0), station_cap}};
  return mec::Topology(std::move(devices), std::move(stations),
                       mec::SystemParameters{});
}

mec::Task tiny_task(std::size_t user, std::size_t index, double deadline,
                    double resource = 1.0) {
  mec::Task t;
  t.id = {user, index};
  t.local_bytes = 1e5;
  t.external_bytes = 0.0;
  t.external_owner = user == 0 ? 1 : 0;
  t.deadline_s = deadline;
  t.resource = resource;
  return t;
}

TEST(EvaluatorTest, CountsPlacements) {
  const auto topo = tiny_topology();
  const HtaInstance inst(topo, {tiny_task(0, 0, 100.0), tiny_task(1, 0, 100.0),
                                tiny_task(0, 1, 100.0)});
  Assignment a;
  a.decisions = {Decision::kLocal, Decision::kEdge, Decision::kCloud};
  const Metrics m = evaluate(inst, a);
  EXPECT_EQ(m.on_local, 1u);
  EXPECT_EQ(m.on_edge, 1u);
  EXPECT_EQ(m.on_cloud, 1u);
  EXPECT_EQ(m.cancelled, 0u);
  EXPECT_DOUBLE_EQ(m.unsatisfied_rate(), 0.0);
}

TEST(EvaluatorTest, EnergyIsSumOfPlacedTasks) {
  const auto topo = tiny_topology();
  const HtaInstance inst(topo, {tiny_task(0, 0, 100.0), tiny_task(1, 0, 100.0)});
  Assignment a;
  a.decisions = {Decision::kLocal, Decision::kCancelled};
  const Metrics m = evaluate(inst, a);
  EXPECT_NEAR(m.total_energy_j, inst.energy(0, mec::Placement::kLocal), 1e-12);
  EXPECT_EQ(m.cancelled, 1u);
  EXPECT_DOUBLE_EQ(m.unsatisfied_rate(), 0.5);
}

TEST(EvaluatorTest, DeadlineViolationsCounted) {
  const auto topo = tiny_topology();
  // deadline impossible on cloud (250 ms WAN latency) but fine locally
  const HtaInstance inst(topo, {tiny_task(0, 0, 0.2)});
  Assignment a;
  a.decisions = {Decision::kCloud};
  const Metrics m = evaluate(inst, a);
  EXPECT_EQ(m.deadline_violations, 1u);
  EXPECT_DOUBLE_EQ(m.unsatisfied_rate(), 1.0);
}

TEST(EvaluatorTest, MeanAndMaxLatency) {
  const auto topo = tiny_topology();
  const HtaInstance inst(topo, {tiny_task(0, 0, 100.0), tiny_task(1, 0, 100.0)});
  Assignment a;
  a.decisions = {Decision::kLocal, Decision::kLocal};
  const Metrics m = evaluate(inst, a);
  const double l0 = inst.latency(0, mec::Placement::kLocal);
  const double l1 = inst.latency(1, mec::Placement::kLocal);
  EXPECT_NEAR(m.mean_latency_s, (l0 + l1) / 2.0, 1e-12);
  EXPECT_NEAR(m.max_latency_s, std::max(l0, l1), 1e-12);
}

TEST(EvaluatorTest, SizeMismatchThrows) {
  const auto topo = tiny_topology();
  const HtaInstance inst(topo, {tiny_task(0, 0, 1.0)});
  Assignment a;  // empty
  EXPECT_THROW(evaluate(inst, a), ModelError);
  EXPECT_THROW(check_feasibility(inst, a), ModelError);
}

TEST(FeasibilityTest, FlagsDeviceOverload) {
  const auto topo = tiny_topology(/*device_cap=*/1.5);
  const HtaInstance inst(
      topo, {tiny_task(0, 0, 100.0, 1.0), tiny_task(0, 1, 100.0, 1.0)});
  Assignment a;
  a.decisions = {Decision::kLocal, Decision::kLocal};  // 2.0 > 1.5
  const FeasibilityReport rep = check_feasibility(inst, a);
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.problems.size(), 1u);
  EXPECT_NE(rep.problems[0].find("device 0"), std::string::npos);
}

TEST(FeasibilityTest, FlagsStationOverload) {
  const auto topo = tiny_topology(10.0, /*station_cap=*/0.5);
  const HtaInstance inst(topo, {tiny_task(0, 0, 100.0, 1.0)});
  Assignment a;
  a.decisions = {Decision::kEdge};
  const FeasibilityReport rep = check_feasibility(inst, a);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.problems[0].find("station 0"), std::string::npos);
}

TEST(FeasibilityTest, CancelledTasksConsumeNothing) {
  const auto topo = tiny_topology(0.0, 0.0);
  const HtaInstance inst(topo, {tiny_task(0, 0, 100.0, 5.0)});
  Assignment a;
  a.decisions = {Decision::kCancelled};
  EXPECT_TRUE(check_feasibility(inst, a).ok);
}

TEST(HtaInstanceTest, ClusterPartitionCoversAllTasks) {
  const auto topo = tiny_topology();
  const HtaInstance inst(topo, {tiny_task(0, 0, 1.0), tiny_task(1, 0, 1.0),
                                tiny_task(1, 1, 1.0)});
  EXPECT_EQ(inst.cluster_tasks(0).size(), 3u);  // single cluster topology
}

TEST(HtaInstanceTest, RejectsUnknownDevices) {
  const auto topo = tiny_topology();
  mec::Task bad = tiny_task(0, 0, 1.0);
  bad.id.user = 9;
  EXPECT_THROW(HtaInstance(topo, {bad}), ModelError);
  mec::Task bad_owner = tiny_task(0, 0, 1.0);
  bad_owner.external_owner = 9;
  EXPECT_THROW(HtaInstance(topo, {bad_owner}), ModelError);
}

TEST(DecisionTest, Conversions) {
  EXPECT_EQ(to_placement(Decision::kLocal), mec::Placement::kLocal);
  EXPECT_EQ(to_placement(Decision::kEdge), mec::Placement::kEdge);
  EXPECT_EQ(to_placement(Decision::kCloud), mec::Placement::kCloud);
  EXPECT_THROW(to_placement(Decision::kCancelled), ModelError);
  EXPECT_EQ(to_decision(mec::Placement::kEdge), Decision::kEdge);
  EXPECT_EQ(to_string(Decision::kCancelled), "cancelled");
}

}  // namespace
}  // namespace mecsched::assign
