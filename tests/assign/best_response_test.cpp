#include "assign/best_response.h"

#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/lp_hta.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

workload::Scenario scenario(std::uint64_t seed, std::size_t tasks = 60) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = 20;
  cfg.num_base_stations = 4;
  return workload::make_scenario(cfg);
}

TEST(BestResponseTest, ConvergesToEquilibriumOnTypicalInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = scenario(seed);
    const HtaInstance inst(s.topology, s.tasks);
    BestResponseReport rep;
    const Assignment a = BestResponse().assign_with_report(inst, rep);
    EXPECT_TRUE(rep.converged) << "seed " << seed;
    EXPECT_EQ(a.size(), inst.num_tasks());
    EXPECT_EQ(a.cancelled(), 0u);  // BRD never cancels
  }
}

TEST(BestResponseTest, EquilibriumIsStable) {
  // At an equilibrium, rerunning BRD from it produces zero moves — we
  // verify via a second run from scratch being deterministic and the
  // first reporting convergence with a final no-move round.
  const auto s = scenario(2);
  const HtaInstance inst(s.topology, s.tasks);
  BestResponseReport r1, r2;
  const Assignment a1 = BestResponse().assign_with_report(inst, r1);
  const Assignment a2 = BestResponse().assign_with_report(inst, r2);
  EXPECT_EQ(a1.decisions, a2.decisions);
  EXPECT_EQ(r1.moves, r2.moves);
}

TEST(BestResponseTest, RespectsCapacities) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = scenario(seed, 100);
    const HtaInstance inst(s.topology, s.tasks);
    const Assignment a = BestResponse().assign(inst);
    const FeasibilityReport rep = check_feasibility(inst, a);
    for (const std::string& p : rep.problems) {
      EXPECT_NE(p.find("deadline"), std::string::npos)
          << "capacity violation: " << p;
    }
  }
}

TEST(BestResponseTest, HighDelayWeightSpreadsLoad) {
  // With latency priced high, players avoid congested subsystems, so the
  // cloud (whose WAN is shared) should not end up hosting everything.
  const auto s = scenario(3, 80);
  const HtaInstance inst(s.topology, s.tasks);
  BestResponseOptions opts;
  opts.delay_weight = 100.0;
  const Assignment a = BestResponse(opts).assign(inst);
  const Metrics m = evaluate(inst, a);
  EXPECT_GT(m.on_local + m.on_edge, inst.num_tasks() / 4);
}

TEST(BestResponseTest, ZeroDelayWeightChasesPureEnergy) {
  // With latency free, each player picks its cheapest-energy admissible
  // subsystem; since E1 < E2 < E3, local/edge fill up first.
  const auto s = scenario(4, 80);
  const HtaInstance inst(s.topology, s.tasks);
  BestResponseOptions opts;
  opts.delay_weight = 0.0;
  const Assignment a = BestResponse(opts).assign(inst);
  const Metrics brd = evaluate(inst, a);
  const Metrics cloud_only = [&] {
    Assignment all_cloud;
    all_cloud.decisions.assign(inst.num_tasks(), Decision::kCloud);
    return evaluate(inst, all_cloud);
  }();
  EXPECT_LT(brd.total_energy_j, cloud_only.total_energy_j);
}

TEST(BestResponseTest, WorseOnDeadlinesThanLpHta) {
  // The paper's critique of the decentralized family: no deadline
  // awareness. Averaged over seeds.
  double brd_unsat = 0.0, lp_unsat = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = scenario(seed, 100);
    const HtaInstance inst(s.topology, s.tasks);
    brd_unsat += evaluate(inst, BestResponse().assign(inst)).unsatisfied_rate();
    lp_unsat += evaluate(inst, LpHta().assign(inst)).unsatisfied_rate();
  }
  EXPECT_GT(brd_unsat, lp_unsat);
}

TEST(BestResponseTest, RoundCapReportsNonConvergence) {
  const auto s = scenario(6, 40);
  const HtaInstance inst(s.topology, s.tasks);
  BestResponseOptions opts;
  opts.max_rounds = 1;  // one pass cannot reach a fixed point check
  BestResponseReport rep;
  BestResponse(opts).assign_with_report(inst, rep);
  EXPECT_FALSE(rep.converged);
  EXPECT_EQ(rep.rounds, 1u);
}

}  // namespace
}  // namespace mecsched::assign
