#include "assign/partial.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "mec/parameters.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

using units::gigahertz;

mec::Topology two_device_topology(double device_hz) {
  std::vector<mec::Device> devices = {
      {0, 0, device_hz, mec::k4G, 10.0},
      {1, 0, gigahertz(2.0), mec::kWiFi, 10.0},
  };
  std::vector<mec::BaseStation> stations = {{0, gigahertz(4.0), 100.0}};
  return mec::Topology(std::move(devices), std::move(stations),
                       mec::SystemParameters{});
}

mec::Task big_task(double alpha_kb, double beta_kb) {
  mec::Task t;
  t.id = {0, 0};
  t.local_bytes = units::kilobytes(alpha_kb);
  t.external_bytes = units::kilobytes(beta_kb);
  t.external_owner = 1;
  t.deadline_s = 1e9;
  return t;
}

TEST(PartialTest, ThetaIsAFraction) {
  const auto topo = two_device_topology(gigahertz(1.5));
  const HtaInstance inst(topo, {big_task(2000, 500)});
  const PartialDecision d = optimal_split(inst, 0);
  EXPECT_GE(d.theta, 0.0);
  EXPECT_LE(d.theta, 1.0);
  EXPECT_GT(d.latency_s, 0.0);
  EXPECT_GT(d.energy_j, 0.0);
}

TEST(PartialTest, NeverSlowerThanEitherPureStrategy) {
  // θ = 1 approximates pure-local (device processes α; BS still gets β) and
  // θ = 0 is pure-edge; the optimum can beat both.
  const auto topo = two_device_topology(gigahertz(1.0));
  const HtaInstance inst(topo, {big_task(3000, 600)});
  const PartialDecision d = optimal_split(inst, 0);
  // Reconstruct the two corners by intersecting with the same model.
  const HtaInstance& i = inst;
  (void)i;
  // Corners: evaluate the objective at θ=0 and θ=1 via the public API by
  // comparing against the decision's latency (θ* minimizes the max).
  // Any fixed θ must be at least as slow.
  // θ=0 corner:
  // t_edge(0) includes the whole α upload, so it upper-bounds d.latency_s.
  // We can't call the internals directly; assert optimality via resampling:
  for (double theta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // re-derive the two sides exactly as partial.cpp does
    const mec::CostModel cost(topo);
    const mec::Task& task = inst.task(0);
    const double alpha = task.local_bytes;
    const double beta = task.external_bytes;
    const double dev_side =
        theta * alpha * task.cycles_per_byte / topo.device(0).cpu_hz;
    const double fetch = cost.upload_seconds(1, beta);
    const double off = (1.0 - theta) * alpha;
    const double edge_side =
        std::max(off > 0 ? cost.upload_seconds(0, off) : 0.0, fetch) +
        (off + beta) * task.cycles_per_byte / topo.base_station(0).cpu_hz +
        cost.download_seconds(0, task.result_bytes());
    EXPECT_LE(d.latency_s, std::max(dev_side, edge_side) + 1e-9)
        << "theta=" << theta;
  }
}

TEST(PartialTest, SlowDeviceOffloadsAlmostEverything) {
  const auto topo = two_device_topology(gigahertz(1.0) * 0.05);  // 50 MHz
  const HtaInstance inst(topo, {big_task(3000, 0)});
  const PartialDecision d = optimal_split(inst, 0);
  EXPECT_LT(d.theta, 0.2);
}

TEST(PartialTest, FastDeviceKeepsEverything) {
  const auto topo = two_device_topology(gigahertz(1.0) * 50.0);  // 50 GHz
  const HtaInstance inst(topo, {big_task(3000, 0)});
  const PartialDecision d = optimal_split(inst, 0);
  EXPECT_GT(d.theta, 0.95);
}

TEST(PartialTest, FluidBoundBeatsBinaryLatencyOnAverage) {
  // Integrality costs latency: the fluid split should be at least as fast
  // as the better of pure local/edge for every task.
  workload::ScenarioConfig cfg;
  cfg.seed = 17;
  cfg.num_tasks = 40;
  cfg.num_devices = 12;
  cfg.num_base_stations = 3;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  const PartialOffloadResult r = run_partial(inst);
  ASSERT_EQ(r.decisions.size(), inst.num_tasks());
  std::size_t strictly_faster = 0;
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    const double binary_best =
        std::min(inst.latency(t, mec::Placement::kLocal),
                 inst.latency(t, mec::Placement::kEdge));
    EXPECT_LE(r.decisions[t].latency_s, binary_best + 1e-6) << "task " << t;
    if (r.decisions[t].latency_s < binary_best - 1e-6) ++strictly_faster;
  }
  EXPECT_GT(strictly_faster, 0u);  // splitting actually helps somewhere
}

TEST(PartialTest, EmptyInstance) {
  workload::ScenarioConfig cfg;
  cfg.num_tasks = 0;
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  const PartialOffloadResult r = run_partial(inst);
  EXPECT_TRUE(r.decisions.empty());
  EXPECT_DOUBLE_EQ(r.mean_latency_s, 0.0);
}

}  // namespace
}  // namespace mecsched::assign
