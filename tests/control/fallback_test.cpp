// FallbackChain tests: rung order, SolverError absorption, the forced
// LP-HTA iteration-budget blowup, and the all-rungs-failed rethrow.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"

#include "assign/assigner.h"
#include "control/fallback.h"
#include "workload/scenario.h"

namespace mecsched::control {
namespace {

using assign::Assignment;
using assign::Decision;
using assign::HtaInstance;

workload::Scenario scenario(std::uint64_t seed, std::size_t tasks = 30) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  return workload::make_scenario(cfg);
}

class ThrowingAssigner : public assign::Assigner {
 public:
  Assignment assign(const HtaInstance&) const override {
    throw SolverError("stub blowup");
  }
  std::string name() const override { return "Throwing"; }
};

class AllLocalAssigner : public assign::Assigner {
 public:
  Assignment assign(const HtaInstance& instance) const override {
    Assignment a;
    a.decisions.assign(instance.num_tasks(), Decision::kLocal);
    return a;
  }
  std::string name() const override { return "AllLocal"; }
};

TEST(FallbackChainTest, HealthyLpHtaServesRungZero) {
  const auto s = scenario(1);
  const HtaInstance inst(s.topology, s.tasks);
  FallbackRung served = FallbackRung::kLocalFirst;
  const Assignment plan = FallbackChain().assign(inst, served);
  EXPECT_EQ(served, FallbackRung::kLpHta);
  EXPECT_EQ(plan.size(), inst.num_tasks());
}

TEST(FallbackChainTest, IterationBudgetBlowupFallsThroughToHgos) {
  const auto s = scenario(2, 60);
  const HtaInstance inst(s.topology, s.tasks);
  assign::LpHtaOptions lp;
  lp.max_lp_iterations = 1;  // the cluster LPs cannot finish in one pivot
  FallbackRung served = FallbackRung::kLpHta;
  const Assignment plan = FallbackChain(lp).assign(inst, served);
  EXPECT_EQ(served, FallbackRung::kHgos);
  EXPECT_EQ(plan.size(), inst.num_tasks());
}

TEST(FallbackChainTest, ThrowingRungsAreSkippedInOrder) {
  const auto s = scenario(3, 10);
  const HtaInstance inst(s.topology, s.tasks);
  FallbackChain chain({std::make_shared<ThrowingAssigner>(),
                       std::make_shared<AllLocalAssigner>()});
  FallbackRung served = FallbackRung::kLpHta;
  const Assignment plan = chain.assign(inst, served);
  EXPECT_EQ(served, FallbackRung::kHgos);  // slot 1 by position
  EXPECT_EQ(plan.count(Decision::kLocal), inst.num_tasks());
}

TEST(FallbackChainTest, AllRungsFailingRethrows) {
  const auto s = scenario(4, 5);
  const HtaInstance inst(s.topology, s.tasks);
  FallbackChain chain({std::make_shared<ThrowingAssigner>(),
                       std::make_shared<ThrowingAssigner>()});
  FallbackRung served = FallbackRung::kLpHta;
  EXPECT_THROW(chain.assign(inst, served), SolverError);
}

TEST(FallbackChainTest, CustomChainSizeIsValidated) {
  EXPECT_THROW(FallbackChain(std::vector<std::shared_ptr<assign::Assigner>>{}),
               ModelError);
  const std::vector<std::shared_ptr<assign::Assigner>> four(
      4, std::make_shared<AllLocalAssigner>());
  EXPECT_THROW(FallbackChain{four}, ModelError);
}

TEST(RungHistogramTest, TallyAndTotal) {
  RungHistogram h;
  EXPECT_EQ(h.total(), 0u);
  h[FallbackRung::kLpHta] += 3;
  h[FallbackRung::kLocalFirst] += 1;
  EXPECT_EQ(h.at(FallbackRung::kLpHta), 3u);
  EXPECT_EQ(h.at(FallbackRung::kHgos), 0u);
  EXPECT_EQ(h.at(FallbackRung::kLocalFirst), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(to_string(FallbackRung::kLpHta), "LP-HTA");
  EXPECT_EQ(to_string(FallbackRung::kHgos), "HGOS");
  EXPECT_EQ(to_string(FallbackRung::kLocalFirst), "LocalFirst");
}

}  // namespace
}  // namespace mecsched::control
