// ReadmissionQueue: the retry policy shared by the resilient controller
// and the serve daemon (extracted from control/resilient.cpp).
#include "control/readmission.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mecsched::control {
namespace {

TEST(ReadmissionQueueTest, CtorRejectsZeroBudgets) {
  EXPECT_THROW(ReadmissionQueue({0, 1}), ModelError);
  EXPECT_THROW(ReadmissionQueue({3, 0}), ModelError);
}

TEST(ReadmissionQueueTest, TakeReadyPreservesAdmissionOrder) {
  ReadmissionQueue q;
  q.admit(7, 0);
  q.admit(3, 0);
  q.admit(9, 0);
  const std::vector<ReadmissionEntry> batch = q.take_ready(0);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 7u);
  EXPECT_EQ(batch[1].id, 3u);
  EXPECT_EQ(batch[2].id, 9u);
  EXPECT_EQ(batch[0].attempts, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(ReadmissionQueueTest, TakeReadyLeavesFutureEntriesWaiting) {
  ReadmissionQueue q;
  q.admit(1, 0);
  q.admit(2, 5);
  const auto now = q.take_ready(0);
  ASSERT_EQ(now.size(), 1u);
  EXPECT_EQ(now[0].id, 1u);
  EXPECT_EQ(q.waiting(), 1u);
  const auto later = q.take_ready(5);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].id, 2u);
}

TEST(ReadmissionQueueTest, RetryBacksOffExponentially) {
  ReadmissionQueue q({10, 1});
  // attempts=1 -> delay 1 epoch; attempts=2 -> 2; attempts=3 -> 4.
  ASSERT_TRUE(q.retry(1, 1, 10));
  ASSERT_TRUE(q.retry(2, 2, 10));
  ASSERT_TRUE(q.retry(3, 3, 10));
  EXPECT_EQ(q.take_ready(10).size(), 0u);
  EXPECT_EQ(q.take_ready(11).size(), 1u);  // id 1 at 10+1
  EXPECT_EQ(q.take_ready(12).size(), 1u);  // id 2 at 10+2
  EXPECT_EQ(q.take_ready(13).size(), 0u);
  EXPECT_EQ(q.take_ready(14).size(), 1u);  // id 3 at 10+4
  EXPECT_EQ(q.retries(), 3u);
}

TEST(ReadmissionQueueTest, RetryRefusesOnceBudgetIsConsumed) {
  ReadmissionQueue q({2, 1});
  EXPECT_TRUE(q.retry(1, 1, 0));
  EXPECT_FALSE(q.retry(2, 2, 0));  // 2 admissions consumed, budget 2
  EXPECT_EQ(q.retries(), 1u);
  EXPECT_EQ(q.waiting(), 1u);
}

TEST(ReadmissionQueueTest, BackoffShiftSaturatesForHugeAttemptCounts) {
  ReadmissionQueue q({100, 1});
  // attempts=60 would shift 1 << 59 epochs; the shift is clamped so the
  // delay stays finite and the entry is eventually takeable.
  ASSERT_TRUE(q.retry(1, 60, 0));
  EXPECT_EQ(q.take_ready(1u << 20).size(), 1u);
}

}  // namespace
}  // namespace mecsched::control
