// Budgeted control-plane behaviour (docs/robustness.md): the FallbackChain
// under a cancellation token — exhausted budgets skip straight to the
// greedy floor, all-rungs-fail still raises a structured error — and the
// ResilientController's residual-deadline arithmetic when the per-epoch
// decision budget eats into task slack (zero / negative residuals at epoch
// boundaries).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/error.h"

#include "assign/assigner.h"
#include "control/fallback.h"
#include "control/resilient.h"
#include "workload/scenario.h"

namespace mecsched::control {
namespace {

using assign::Assignment;
using assign::Decision;
using assign::HtaInstance;
using assign::TimedTask;

workload::Scenario scenario(std::uint64_t seed, std::size_t tasks = 30) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  return workload::make_scenario(cfg);
}

class ThrowingAssigner : public assign::Assigner {
 public:
  Assignment assign(const HtaInstance&) const override {
    throw SolverError("stub blowup");
  }
  std::string name() const override { return "Throwing"; }
};

class AllLocalAssigner : public assign::Assigner {
 public:
  Assignment assign(const HtaInstance& instance) const override {
    Assignment a;
    a.decisions.assign(instance.num_tasks(), Decision::kLocal);
    return a;
  }
  std::string name() const override { return "AllLocal"; }
};

TEST(FallbackBudgetTest, UnlimitedTokenMatchesTheUnbudgetedPath) {
  const auto s = scenario(11);
  const HtaInstance inst(s.topology, s.tasks);
  FallbackRung plain_rung = FallbackRung::kLocalFirst;
  FallbackRung budgeted_rung = FallbackRung::kLocalFirst;
  const FallbackChain chain;
  const Assignment plain = chain.assign(inst, plain_rung);
  const Assignment budgeted =
      chain.assign(inst, budgeted_rung, CancellationToken{});
  EXPECT_EQ(plain_rung, budgeted_rung);
  EXPECT_EQ(plain.decisions, budgeted.decisions);
}

TEST(FallbackBudgetTest, ExhaustedBudgetSkipsToTheFinalRung) {
  const auto s = scenario(12);
  const HtaInstance inst(s.topology, s.tasks);
  const CancellationToken expired{Deadline::after_s(0.0)};
  FallbackRung served = FallbackRung::kLpHta;
  const Assignment plan = FallbackChain().assign(inst, served, expired);
  // The final rung is the O(n log n) floor: it always runs, budget or not.
  EXPECT_EQ(served, FallbackRung::kLocalFirst);
  EXPECT_EQ(plan.size(), inst.num_tasks());
}

TEST(FallbackBudgetTest, CancelRequestSkipsNonFinalRungs) {
  const auto s = scenario(13, 10);
  const HtaInstance inst(s.topology, s.tasks);
  CancellationSource source;
  source.request_cancel();
  FallbackChain chain({std::make_shared<ThrowingAssigner>(),
                       std::make_shared<AllLocalAssigner>()});
  FallbackRung served = FallbackRung::kLpHta;
  // Rung 0 (throwing) must be skipped, not run: the plan arrives from the
  // final rung without any SolverError in between.
  const Assignment plan = chain.assign(inst, served, source.token());
  EXPECT_EQ(served, FallbackRung::kHgos);  // slot 1 by position
  EXPECT_EQ(plan.count(Decision::kLocal), inst.num_tasks());
}

TEST(FallbackBudgetTest, AllRungsFailingUnderBudgetRaisesStructuredError) {
  const auto s = scenario(14, 5);
  const HtaInstance inst(s.topology, s.tasks);
  FallbackChain chain({std::make_shared<ThrowingAssigner>(),
                       std::make_shared<ThrowingAssigner>()});
  FallbackRung served = FallbackRung::kLpHta;
  try {
    chain.assign(inst, served, CancellationToken{Deadline::after_s(3600.0)});
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_NE(std::string(e.what()).find("every fallback rung failed"),
              std::string::npos);
  }
}

// --- ResilientController residual-deadline arithmetic -------------------

std::vector<TimedTask> light_tasks(const mec::Topology& topo,
                                   double deadline_s) {
  std::vector<TimedTask> tasks;
  for (std::size_t i = 0; i < 4; ++i) {
    mec::Task t;
    t.id = {topo.cluster(0)[i % topo.cluster(0).size()], i};
    t.local_bytes = 50e3;
    t.external_bytes = 0.0;
    t.deadline_s = deadline_s;
    tasks.push_back({t, 0.0});
  }
  return tasks;
}

mec::Topology small_topology() {
  workload::ScenarioConfig cfg;
  cfg.seed = 21;
  cfg.num_tasks = 1;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  return workload::make_scenario(cfg).topology;
}

TEST(ResilientBudgetTest, RejectsBadDecisionBudgets) {
  ResilientOptions opts;
  opts.decision_budget_ms = -1.0;
  const mec::Topology topo = small_topology();
  const auto tasks = light_tasks(topo, 10.0);
  EXPECT_THROW(ResilientController(opts).run(topo, tasks, {}), ModelError);
  opts.decision_budget_ms = std::nan("");
  EXPECT_THROW(ResilientController(opts).run(topo, tasks, {}), ModelError);
}

TEST(ResilientBudgetTest, GenerousBudgetStillCompletesEverything) {
  ResilientOptions opts;
  opts.decision_budget_ms = 10.0;  // tiny against 10 s deadlines
  const mec::Topology topo = small_topology();
  const auto tasks = light_tasks(topo, 10.0);
  const ResilientResult r = ResilientController(opts).run(topo, tasks, {});
  EXPECT_EQ(r.completed, tasks.size());
  for (const ResilientTaskOutcome& o : r.outcomes) {
    EXPECT_EQ(o.fate, TaskFate::kCompleted);
  }
}

TEST(ResilientBudgetTest, BudgetConsumingAllSlackExpiresTasksAtTriage) {
  // At the first epoch boundary (t = 0.5) a 10 s deadline has 9.5 s of
  // residual slack; a 9.8 s decision budget eats past it, so the residual
  // goes negative and every task must expire at triage — deterministically,
  // because the *configured* budget is charged, not measured wall time.
  ResilientOptions opts;
  opts.epoch_s = 0.5;
  opts.decision_budget_ms = 9800.0;
  const mec::Topology topo = small_topology();
  const auto tasks = light_tasks(topo, 10.0);
  const ResilientResult r = ResilientController(opts).run(topo, tasks, {});
  EXPECT_EQ(r.completed, 0u);
  for (const ResilientTaskOutcome& o : r.outcomes) {
    EXPECT_EQ(o.fate, TaskFate::kDeadlineExpired);
  }
}

TEST(ResilientBudgetTest, ZeroResidualBoundaryExpiresInsteadOfUnderflowing) {
  // Deadline == epoch + budget exactly: the residual at triage is 0, which
  // must count as expired (a zero-second task cannot run), not wrap into a
  // bogus negative-deadline LP.
  ResilientOptions opts;
  opts.epoch_s = 0.5;
  opts.decision_budget_ms = 9500.0;  // 0.5 + 9.5 == the 10 s deadline
  const mec::Topology topo = small_topology();
  const auto tasks = light_tasks(topo, 10.0);
  const ResilientResult r = ResilientController(opts).run(topo, tasks, {});
  for (const ResilientTaskOutcome& o : r.outcomes) {
    EXPECT_EQ(o.fate, TaskFate::kDeadlineExpired);
  }
}

}  // namespace
}  // namespace mecsched::control
