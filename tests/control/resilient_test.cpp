// ResilientController acceptance tests. The headline scenario follows the
// fault drill the module was built for: a seeded churn schedule with three
// device failures, one recovery and one station outage, under which the
// controller must strictly beat replaying a one-shot clairvoyant LP-HTA
// plan through the same schedule, rescue at least one orphaned divisible
// task by DTA re-division, and absorb a forced LP-HTA SolverError without
// aborting.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "control/resilient.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace mecsched::control {
namespace {

using assign::Decision;
using assign::HtaInstance;
using assign::TimedTask;
using sim::FaultKind;
using sim::FaultSchedule;

mec::Topology topology(std::uint64_t seed = 21) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = 1;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  return workload::make_scenario(cfg).topology;
}

mec::Task task(std::size_t issuer, std::size_t index, double alpha_bytes,
               double beta_bytes, std::size_t owner, double deadline_s) {
  mec::Task t;
  t.id = {issuer, index};
  t.local_bytes = alpha_bytes;
  t.external_bytes = beta_bytes;
  t.external_owner = owner;
  t.deadline_s = deadline_s;
  return t;
}

// The drill: devices from cluster 0 host the owner-failure stories, cluster
// 1 hosts the cell outage, and one issuer dies outright.
struct Drill {
  mec::Topology topo = topology();
  std::vector<TimedTask> tasks;
  FaultSchedule faults;
  SharedDataView shared;

  std::size_t issuer_a = 0, owner_a = 0;    // owner fails at 0, back at 2
  std::size_t issuer_b = 0, owner_b = 0;    // owner dies at 1, stays down
  std::size_t replica_b = 0;                // second copy of B's data item
  std::size_t issuer_c = 0;                 // in the dark cell
  std::size_t dead_issuer = 0;              // dies at 0, stays down

  Drill() {
    const std::vector<std::size_t>& c0 = topo.cluster(0);
    const std::vector<std::size_t>& c1 = topo.cluster(1);
    EXPECT_GE(c0.size(), 5u);
    EXPECT_GE(c1.size(), 2u);
    issuer_a = c0[0];
    owner_a = c0[1];
    issuer_b = c0[2];
    owner_b = c0[3];
    replica_b = c0[4];
    issuer_c = c1[0];
    dead_issuer = c1[1];

    // A1/A2: external data on owner_a; lost to the replay, retried by the
    // controller once owner_a recovers at t = 2.
    tasks.push_back({task(issuer_a, 0, 100e3, 500e3, owner_a, 20.0), 0.0});
    tasks.push_back({task(issuer_a, 1, 100e3, 500e3, owner_a, 20.0), 0.0});
    // B: a divisible task with a 2 MB item held by owner_b and replica_b.
    // Its fetch outlives owner_b (dead at t = 1), so it is orphaned mid-run
    // and must come back through DTA re-division.
    tasks.push_back({task(issuer_b, 0, 50e3, 2e6, owner_b, 30.0), 0.0});
    // C1/C2: compute-heavy tasks in the dark cell — local execution misses
    // the deadline, so they must wait for their station (down until t = 3).
    mec::Task heavy = task(issuer_c, 0, 1e6, 0.0, issuer_c, 30.0);
    heavy.cycles_per_byte = 33000.0;
    tasks.push_back({heavy, 0.0});
    heavy.id.index = 1;
    tasks.push_back({heavy, 0.0});
    // D: its issuer is gone for good; nobody can win this one.
    tasks.push_back({task(dead_issuer, 0, 200e3, 0.0, dead_issuer, 20.0), 0.0});

    faults = FaultSchedule({
        {0.0, FaultKind::kDeviceFail, owner_a, 1.0},
        {2.0, FaultKind::kDeviceRecover, owner_a, 1.0},
        {1.0, FaultKind::kDeviceFail, owner_b, 1.0},
        {0.0, FaultKind::kDeviceFail, dead_issuer, 1.0},
        {0.0, FaultKind::kStationFail, 1, 1.0},
        {3.0, FaultKind::kStationRecover, 1, 1.0},
    });

    shared.item_bytes = {2e6};
    shared.ownership.assign(topo.num_devices(), {});
    shared.ownership[owner_b] = {0};
    shared.ownership[replica_b] = {0};
    shared.task_items.assign(tasks.size(), {});
    shared.task_items[2] = {0};  // task B
  }
};

TEST(ResilientControllerTest, BeatsOneShotReplayUnderChurn) {
  Drill drill;
  ASSERT_GE(drill.faults.device_failures(), 3u);
  ASSERT_GE(drill.faults.station_failures(), 1u);

  ResilientOptions opts;
  opts.max_attempts = 6;
  const ResilientResult r = ResilientController(opts).run(
      drill.topo, drill.tasks, drill.faults, &drill.shared);

  // The one-shot clairvoyant plan, replayed through the same schedule.
  std::vector<mec::Task> flat;
  for (const TimedTask& tt : drill.tasks) flat.push_back(tt.task);
  const HtaInstance inst(drill.topo, flat);
  const assign::Assignment plan = assign::LpHta().assign(inst);
  sim::SimOptions sim_opts;
  sim_opts.faults = drill.faults;
  const sim::SimResult replay = sim::simulate(inst, plan, sim_opts);
  std::size_t replay_unsat = 0;
  for (std::size_t t = 0; t < flat.size(); ++t) {
    const sim::TaskTimeline& tl = replay.timelines[t];
    if (!tl.placed || tl.failed ||
        tl.latency_s() > flat[t].deadline_s + 1e-9) {
      ++replay_unsat;
    }
  }

  EXPECT_LT(r.unsatisfied, replay_unsat);  // the acceptance inequality
  EXPECT_GE(r.orphaned, 1u);
  EXPECT_GE(r.rescued_by_dta, 1u);         // B came back via re-division
  EXPECT_GE(r.retries, 1u);

  // Per-task fates: only the dead-issuer task is unsatisfiable.
  EXPECT_EQ(r.outcomes[0].fate, TaskFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TaskFate::kCompleted);
  EXPECT_EQ(r.outcomes[2].fate, TaskFate::kRescuedByDta);
  EXPECT_EQ(r.outcomes[3].fate, TaskFate::kCompleted);
  EXPECT_EQ(r.outcomes[4].fate, TaskFate::kCompleted);
  EXPECT_EQ(r.outcomes[5].fate, TaskFate::kLostIssuer);
  EXPECT_EQ(r.unsatisfied, 1u);
  EXPECT_EQ(r.completed, 5u);

  // The A tasks waited for the recovery: they start no earlier than t = 2.
  EXPECT_GE(r.outcomes[0].start_s, 2.0);
  EXPECT_GT(r.outcomes[0].attempts, 1u);
}

TEST(ResilientControllerTest, ForcedSolverErrorIsAbsorbedByTheChain) {
  workload::ScenarioConfig cfg;
  cfg.seed = 22;
  cfg.num_tasks = 40;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  const workload::Scenario s = workload::make_scenario(cfg);
  std::vector<TimedTask> timed;
  for (const mec::Task& t : s.tasks) timed.push_back({t, 0.0});

  ResilientOptions opts;
  opts.lp.max_lp_iterations = 1;  // rung 0 throws SolverError every epoch
  ResilientResult r;
  ASSERT_NO_THROW(r = ResilientController(opts).run(s.topology, timed,
                                                    FaultSchedule{}));
  EXPECT_EQ(r.rungs.at(FallbackRung::kLpHta), 0u);
  EXPECT_GT(r.rungs.at(FallbackRung::kHgos), 0u);
  EXPECT_GT(r.completed, 0u);
}

TEST(ResilientControllerTest, QuietScheduleCompletesEasyTasks) {
  const mec::Topology topo = topology(23);
  std::vector<TimedTask> tasks;
  for (std::size_t i = 0; i < 4; ++i) {
    tasks.push_back({task(i, 0, 200e3, 0.0, i, 20.0), 0.1 * double(i)});
  }
  const ResilientResult r =
      ResilientController().run(topo, tasks, FaultSchedule{});
  EXPECT_EQ(r.completed, tasks.size());
  EXPECT_EQ(r.unsatisfied, 0u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.orphaned, 0u);
  EXPECT_DOUBLE_EQ(r.unsatisfied_rate(), 0.0);
  for (const ResilientTaskOutcome& o : r.outcomes) {
    EXPECT_EQ(o.fate, TaskFate::kCompleted);
    EXPECT_NE(o.decision, Decision::kCancelled);
    EXPECT_EQ(o.attempts, 1u);
  }
}

TEST(ResilientControllerTest, RetriesExhaustWhenTheOwnerNeverReturns) {
  const mec::Topology topo = topology(24);
  std::vector<TimedTask> tasks;
  // No shared view: the dead owner's data cannot be re-divided.
  tasks.push_back({task(1, 0, 100e3, 400e3, 2, 1e6), 0.0});
  const FaultSchedule faults({{0.0, FaultKind::kDeviceFail, 2, 1.0}});
  ResilientOptions opts;
  opts.max_attempts = 3;
  const ResilientResult r = ResilientController(opts).run(topo, tasks, faults);
  EXPECT_EQ(r.unsatisfied, 1u);
  EXPECT_EQ(r.outcomes[0].fate, TaskFate::kRetriesExhausted);
  EXPECT_EQ(r.outcomes[0].attempts, opts.max_attempts);
  EXPECT_EQ(r.retries, opts.max_attempts - 1);
}

TEST(ResilientControllerTest, ValidatesItsInputs) {
  const mec::Topology topo = topology(25);
  std::vector<TimedTask> tasks = {{task(0, 0, 1e3, 0.0, 0, 5.0), 0.0}};
  ResilientOptions opts;
  opts.epoch_s = 0.0;
  EXPECT_THROW(ResilientController(opts).run(topo, tasks, FaultSchedule{}),
               ModelError);
  opts = ResilientOptions{};
  opts.max_attempts = 0;
  EXPECT_THROW(ResilientController(opts).run(topo, tasks, FaultSchedule{}),
               ModelError);
  // Fault targets are validated against the topology.
  const FaultSchedule bad({{0.0, FaultKind::kDeviceFail, 99, 1.0}});
  EXPECT_THROW(ResilientController().run(topo, tasks, bad), ModelError);
  // A misaligned shared view is rejected.
  SharedDataView shared;
  shared.task_items.resize(2);
  shared.ownership.resize(topo.num_devices());
  EXPECT_THROW(
      ResilientController().run(topo, tasks, FaultSchedule{}, &shared),
      ModelError);
}

}  // namespace
}  // namespace mecsched::control
