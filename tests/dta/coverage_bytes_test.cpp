// Tests for the byte-weighted DTA-Workload extension.
#include <gtest/gtest.h>

#include "common/error.h"
#include "dta/coverage.h"
#include "dta/pipeline.h"
#include "workload/shared_data.h"

namespace mecsched::dta {
namespace {

TEST(DivideBalancedBytesTest, StillAValidCoverage) {
  const DataUniverse u({100.0, 200.0, 300.0, 400.0});
  const std::vector<ItemSet> own = {{0, 1, 2, 3}, {2, 3}};
  const Coverage c = divide_balanced_bytes({0, 1, 2, 3}, own, u);
  EXPECT_TRUE(is_valid_coverage(c, {0, 1, 2, 3}, own));
}

TEST(DivideBalancedBytesTest, BalancesBytesNotCounts) {
  // Device 0 owns many small items; device 1 owns one huge one plus the
  // small ones. Count-balancing would serve device 1 first (1 item < 3
  // items); byte-balancing serves device 0's small volume first too —
  // distinguish with volumes flipped:
  //   items: 0,1,2 are 10 B each; item 3 is 1000 B.
  //   dev A owns {3} (1 item, 1000 B); dev B owns {0,1,2,3}.
  // Count-greedy serves A first (1 item) and hands it the 1000 B block;
  // byte-greedy serves B's... B has 1030 B > A's 1000 B, so A still goes
  // first. Use a sharper construction:
  //   dev A owns {0} (10 B); dev B owns {0,3} — count: A=1,B=2 -> A first;
  //   bytes: A=10 < B=1010 -> A first. Same. The observable difference
  // needs overlapping picks; assert on max_share_bytes directly instead.
  const DataUniverse u({10.0, 10.0, 10.0, 1000.0});
  const std::vector<ItemSet> own = {{0, 1, 2}, {2, 3}, {3}};
  const ItemSet needed = {0, 1, 2, 3};
  const Coverage bytes = divide_balanced_bytes(needed, own, u);
  const Coverage count = divide_balanced(needed, own);
  EXPECT_TRUE(is_valid_coverage(bytes, needed, own));
  EXPECT_TRUE(is_valid_coverage(count, needed, own));
  EXPECT_LE(bytes.max_share_bytes(u), count.max_share_bytes(u) + 1e-9);
}

TEST(DivideBalancedBytesTest, UnownedItemThrows) {
  const DataUniverse u({1.0, 1.0});
  EXPECT_THROW(divide_balanced_bytes({0, 1}, {{0}}, u), ModelError);
}

TEST(DivideBalancedBytesTest, EqualSizesMatchCountVariant) {
  // With equal block sizes the two variants make identical greedy picks.
  workload::SharedDataConfig cfg;
  cfg.seed = 5;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  cfg.num_items = 50;
  cfg.num_tasks = 12;
  const auto s = workload::make_shared_scenario(cfg);
  const ItemSet needed = s.required_items();
  const Coverage a = divide_balanced(needed, s.ownership);
  const Coverage b = divide_balanced_bytes(needed, s.ownership, s.universe);
  EXPECT_EQ(a.assigned, b.assigned);
}

TEST(DivideBalancedBytesTest, PipelineStrategyWorks) {
  workload::SharedDataConfig cfg;
  cfg.seed = 7;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  cfg.num_tasks = 12;
  cfg.num_items = 40;
  const auto s = workload::make_shared_scenario(cfg);
  DtaOptions opts;
  opts.strategy = DtaStrategy::kWorkloadBytes;
  const DtaResult r = run_dta(s, opts);
  EXPECT_TRUE(is_valid_coverage(r.coverage, s.required_items(), s.ownership));
  EXPECT_GT(r.total_energy_j, 0.0);
  EXPECT_EQ(to_string(DtaStrategy::kWorkloadBytes), "DTA-Workload(bytes)");
}

TEST(MaxShareBytesTest, ComputesVolume) {
  const DataUniverse u({5.0, 10.0, 20.0});
  Coverage c;
  c.assigned = {{0, 2}, {1}};
  EXPECT_DOUBLE_EQ(c.max_share_bytes(u), 25.0);
}

}  // namespace
}  // namespace mecsched::dta
