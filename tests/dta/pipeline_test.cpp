#include "dta/pipeline.h"

#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "workload/shared_data.h"

namespace mecsched::dta {
namespace {

workload::SharedDataConfig small_config(std::uint64_t seed) {
  workload::SharedDataConfig cfg;
  cfg.seed = seed;
  cfg.num_devices = 12;
  cfg.num_base_stations = 3;
  cfg.num_tasks = 20;
  cfg.num_items = 80;
  cfg.max_input_kb = 1500.0;
  return cfg;
}

TEST(DtaPipelineTest, ProducesValidCoverage) {
  const auto scenario = workload::make_shared_scenario(small_config(1));
  for (DtaStrategy s : {DtaStrategy::kWorkload, DtaStrategy::kNumber}) {
    const DtaResult r = run_dta(scenario, DtaOptions{s});
    EXPECT_TRUE(is_valid_coverage(r.coverage, scenario.required_items(),
                                  scenario.ownership))
        << to_string(s);
    EXPECT_EQ(r.involved_devices, r.coverage.involved_devices());
  }
}

TEST(DtaPipelineTest, RearrangedTasksAreLocalOnly) {
  const auto scenario = workload::make_shared_scenario(small_config(2));
  const DtaResult r = run_dta(scenario);
  EXPECT_FALSE(r.rearranged.empty());
  for (const mec::Task& t : r.rearranged) {
    EXPECT_DOUBLE_EQ(t.external_bytes, 0.0);
    EXPECT_GT(t.local_bytes, 0.0);
  }
}

TEST(DtaPipelineTest, RearrangedBytesCoverEveryTasksData) {
  const auto scenario = workload::make_shared_scenario(small_config(3));
  const DtaResult r = run_dta(scenario);
  // Summed over partials, each original task's full input is processed
  // exactly once (disjoint coverage).
  double rearranged_bytes = 0.0;
  for (const mec::Task& t : r.rearranged) rearranged_bytes += t.local_bytes;
  double original_bytes = 0.0;
  for (const DivisibleTask& t : scenario.tasks) {
    original_bytes += scenario.universe.total_bytes(t.items);
  }
  EXPECT_NEAR(rearranged_bytes, original_bytes, 1e-6);
}

TEST(DtaPipelineTest, EnergyDecomposes) {
  const auto scenario = workload::make_shared_scenario(small_config(4));
  const DtaResult r = run_dta(scenario);
  EXPECT_NEAR(r.total_energy_j, r.compute_energy_j + r.coordination_energy_j,
              1e-9);
  EXPECT_GT(r.compute_energy_j, 0.0);
  EXPECT_GT(r.coordination_energy_j, 0.0);
  EXPECT_GT(r.processing_time_s, 0.0);
}

TEST(DtaPipelineTest, BeatsHolisticLpHtaOnEnergy) {
  // Fig. 5(a)'s core claim: with η = 0.2, avoiding raw-data transfer wins.
  double dta_w = 0.0, dta_n = 0.0, holistic = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto scenario = workload::make_shared_scenario(small_config(seed));
    dta_w += run_dta(scenario, DtaOptions{DtaStrategy::kWorkload}).total_energy_j;
    dta_n += run_dta(scenario, DtaOptions{DtaStrategy::kNumber}).total_energy_j;

    const assign::HtaInstance inst(scenario.topology,
                                   to_holistic_tasks(scenario));
    const auto a = assign::LpHta().assign(inst);
    holistic += assign::evaluate(inst, a).total_energy_j;
  }
  EXPECT_LT(dta_w, holistic);
  EXPECT_LT(dta_n, holistic);
}

TEST(DtaPipelineTest, WorkloadFasterNumberLeaner) {
  // Fig. 6's two shapes, averaged over seeds.
  double time_w = 0.0, time_n = 0.0;
  double dev_w = 0.0, dev_n = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = small_config(seed);
    cfg.num_tasks = 30;
    const auto scenario = workload::make_shared_scenario(cfg);
    const DtaResult w = run_dta(scenario, DtaOptions{DtaStrategy::kWorkload});
    const DtaResult n = run_dta(scenario, DtaOptions{DtaStrategy::kNumber});
    time_w += w.processing_time_s;
    time_n += n.processing_time_s;
    dev_w += static_cast<double>(w.involved_devices);
    dev_n += static_cast<double>(n.involved_devices);
  }
  EXPECT_LT(time_w, time_n);  // balanced shares -> shorter makespan
  EXPECT_LT(dev_n, dev_w);    // set cover -> fewer devices
}

TEST(ToHolisticTest, PreservesTaskVolume) {
  const auto scenario = workload::make_shared_scenario(small_config(6));
  const auto tasks = to_holistic_tasks(scenario);
  ASSERT_EQ(tasks.size(), scenario.tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double expect =
        scenario.universe.total_bytes(scenario.tasks[i].items);
    EXPECT_NEAR(tasks[i].input_bytes(), expect, 1e-6);
    EXPECT_EQ(tasks[i].id.user, scenario.tasks[i].id.user);
    // α must be exactly the issuer-owned bytes
    const ItemSet local = set_intersect(
        scenario.tasks[i].items, scenario.ownership[tasks[i].id.user]);
    EXPECT_NEAR(tasks[i].local_bytes, scenario.universe.total_bytes(local),
                1e-6);
  }
}

TEST(ToHolisticTest, ExternalOwnerOwnsSomeExternalData) {
  const auto scenario = workload::make_shared_scenario(small_config(7));
  const auto tasks = to_holistic_tasks(scenario);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].external_bytes <= 0.0) continue;
    const ItemSet external = set_minus(
        scenario.tasks[i].items,
        scenario.ownership[scenario.tasks[i].id.user]);
    const ItemSet held = set_intersect(
        external, scenario.ownership[tasks[i].external_owner]);
    EXPECT_FALSE(held.empty()) << "task " << i;
  }
}

TEST(DtaPipelineTest, DescriptorSizeFeedsCoordinationEnergy) {
  auto cfg = small_config(8);
  cfg.op_kb = 0.1;
  const DtaResult cheap = run_dta(workload::make_shared_scenario(cfg));
  cfg.op_kb = 50.0;  // bulky task descriptors
  const DtaResult bulky = run_dta(workload::make_shared_scenario(cfg));
  EXPECT_LT(cheap.coordination_energy_j, bulky.coordination_energy_j);
  // compute energy is descriptor-independent
  EXPECT_NEAR(cheap.compute_energy_j, bulky.compute_energy_j,
              1e-6 * (1.0 + cheap.compute_energy_j));
}

TEST(DtaPipelineTest, GenerousDeadlinesLeaveNoPartialUnsatisfied) {
  auto cfg = small_config(9);
  cfg.deadline_s = 1e6;
  const DtaResult r = run_dta(workload::make_shared_scenario(cfg));
  EXPECT_EQ(r.partials_cancelled, 0u);
  EXPECT_EQ(r.partials_deadline_violations, 0u);
  EXPECT_DOUBLE_EQ(r.partial_unsatisfied_rate(), 0.0);
}

TEST(DtaStrategyTest, Names) {
  EXPECT_EQ(to_string(DtaStrategy::kWorkload), "DTA-Workload");
  EXPECT_EQ(to_string(DtaStrategy::kNumber), "DTA-Number");
}

}  // namespace
}  // namespace mecsched::dta
