#include "dta/set_cover.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace mecsched::dta {
namespace {

TEST(GreedySetCoverTest, SingleSetCoversAll) {
  const auto chosen = greedy_set_cover({1, 2, 3}, {{1, 2, 3}, {1}});
  EXPECT_EQ(chosen, (std::vector<std::size_t>{0}));
}

TEST(GreedySetCoverTest, PicksLargestFirst) {
  const auto chosen =
      greedy_set_cover({0, 1, 2, 3, 4}, {{0, 1}, {2, 3, 4}, {0, 4}});
  ASSERT_GE(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], 1u);  // the 3-element set wins round one
}

TEST(GreedySetCoverTest, EmptyUniverseNeedsNothing) {
  EXPECT_TRUE(greedy_set_cover({}, {{1, 2}}).empty());
}

TEST(GreedySetCoverTest, UncoverableThrows) {
  EXPECT_THROW(greedy_set_cover({1, 2, 9}, {{1, 2}}), ModelError);
  EXPECT_THROW(exact_set_cover({1, 2, 9}, {{1, 2}}), ModelError);
}

TEST(ExactSetCoverTest, FindsMinimum) {
  // greedy takes {0..3} then two more; optimal is the two halves.
  const ItemSet universe = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<ItemSet> sets = {
      {0, 1, 2, 3}, {0, 1, 4, 5}, {2, 3, 6, 7}, {4, 5}, {6, 7}};
  const auto exact = exact_set_cover(universe, sets);
  EXPECT_EQ(exact.size(), 2u);
}

TEST(ExactSetCoverTest, RejectsLargeFamilies) {
  std::vector<ItemSet> sets(21, ItemSet{0});
  EXPECT_THROW(exact_set_cover({0}, sets), ModelError);
}

class GreedyRatio : public ::testing::TestWithParam<int> {};

TEST_P(GreedyRatio, WithinLnNOfOptimum) {
  // Property (Sec. IV.B): greedy uses at most H(|largest set|) ~ ln n + 1
  // times the optimal number of sets.
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
  const auto n_items = static_cast<std::size_t>(rng.uniform_int(4, 16));
  const auto n_sets = static_cast<std::size_t>(rng.uniform_int(3, 10));
  ItemSet universe;
  for (std::size_t i = 0; i < n_items; ++i) universe.push_back(i);

  std::vector<ItemSet> sets(n_sets);
  // Guarantee coverability: spread items round-robin, then add noise.
  for (std::size_t i = 0; i < n_items; ++i) {
    sets[i % n_sets].push_back(i);
  }
  for (auto& s : sets) {
    for (std::size_t i = 0; i < n_items; ++i) {
      if (rng.bernoulli(0.3) && !set_contains(s, i)) {
        s = set_union(s, {i});
      }
    }
  }

  const auto greedy = greedy_set_cover(universe, sets);
  const auto exact = exact_set_cover(universe, sets);
  const double h_bound = std::log(static_cast<double>(n_items)) + 1.0;
  EXPECT_LE(static_cast<double>(greedy.size()),
            h_bound * static_cast<double>(exact.size()))
      << "seed " << GetParam();
  // and greedy is a real cover
  ItemSet covered;
  for (std::size_t i : greedy) covered = set_union(covered, sets[i]);
  EXPECT_TRUE(set_minus(universe, covered).empty());
}

INSTANTIATE_TEST_SUITE_P(Random, GreedyRatio, ::testing::Range(0, 30));

}  // namespace
}  // namespace mecsched::dta
