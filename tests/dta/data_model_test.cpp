#include "dta/data_model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mecsched::dta {
namespace {

TEST(SetAlgebraTest, Intersect) {
  EXPECT_EQ(set_intersect({1, 3, 5, 7}, {2, 3, 4, 7}), (ItemSet{3, 7}));
  EXPECT_EQ(set_intersect({}, {1}), ItemSet{});
  EXPECT_EQ(set_intersect({1, 2}, {}), ItemSet{});
}

TEST(SetAlgebraTest, Union) {
  EXPECT_EQ(set_union({1, 3}, {2, 3}), (ItemSet{1, 2, 3}));
  EXPECT_EQ(set_union({}, {}), ItemSet{});
}

TEST(SetAlgebraTest, Minus) {
  EXPECT_EQ(set_minus({1, 2, 3, 4}, {2, 4}), (ItemSet{1, 3}));
  EXPECT_EQ(set_minus({1}, {1}), ItemSet{});
}

TEST(SetAlgebraTest, ContainsAndSortedUnique) {
  EXPECT_TRUE(set_contains({1, 5, 9}, 5));
  EXPECT_FALSE(set_contains({1, 5, 9}, 4));
  EXPECT_TRUE(is_sorted_unique({1, 2, 3}));
  EXPECT_TRUE(is_sorted_unique({}));
  EXPECT_FALSE(is_sorted_unique({1, 1}));
  EXPECT_FALSE(is_sorted_unique({2, 1}));
}

TEST(DataUniverseTest, SizesAndTotals) {
  const DataUniverse u({100.0, 200.0, 300.0});
  EXPECT_EQ(u.num_items(), 3u);
  EXPECT_DOUBLE_EQ(u.item_size(1), 200.0);
  EXPECT_DOUBLE_EQ(u.total_bytes({0, 2}), 400.0);
  EXPECT_DOUBLE_EQ(u.total_bytes({}), 0.0);
  EXPECT_THROW(u.item_size(3), ModelError);
  EXPECT_THROW(DataUniverse({-1.0}), ModelError);
}

TEST(DivisibleTaskTest, ResultSizeModels) {
  DivisibleTask t;
  t.result_ratio = 0.25;
  EXPECT_DOUBLE_EQ(t.result_bytes(1000.0), 250.0);
  t.result_kind = mec::ResultSizeKind::kConstant;
  t.result_const_bytes = 99.0;
  EXPECT_DOUBLE_EQ(t.result_bytes(1000.0), 99.0);
}

}  // namespace
}  // namespace mecsched::dta
