#include "dta/coverage.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mecsched::dta {
namespace {

TEST(DivideBalancedTest, SimpleDisjointOwnership) {
  // Each device owns a disjoint slice: coverage must hand each its slice.
  const std::vector<ItemSet> own = {{0, 1}, {2, 3}, {4}};
  const Coverage c = divide_balanced({0, 1, 2, 3, 4}, own);
  EXPECT_TRUE(is_valid_coverage(c, {0, 1, 2, 3, 4}, own));
  EXPECT_EQ(c.assigned[0], (ItemSet{0, 1}));
  EXPECT_EQ(c.assigned[2], (ItemSet{4}));
  EXPECT_EQ(c.involved_devices(), 3u);
}

TEST(DivideBalancedTest, OverlapGoesToScarcerOwnerFirst) {
  // Device 0 owns everything; device 1 owns only {3}. Balanced division
  // serves device 1 first (smallest intersection), so 1 keeps {3}.
  const std::vector<ItemSet> own = {{0, 1, 2, 3}, {3}};
  const Coverage c = divide_balanced({0, 1, 2, 3}, own);
  EXPECT_TRUE(is_valid_coverage(c, {0, 1, 2, 3}, own));
  EXPECT_EQ(c.assigned[1], (ItemSet{3}));
  EXPECT_EQ(c.assigned[0], (ItemSet{0, 1, 2}));
}

TEST(DivideBalancedTest, BalancesBetterThanMinDevices) {
  // 2 devices both owning all 8 items: balanced should split 8/0? No —
  // the greedy takes whole intersections, so device picked first takes all.
  // Use staggered ownership where balancing shows: four devices each own a
  // half-overlapping window.
  const std::vector<ItemSet> own = {
      {0, 1, 2, 3}, {2, 3, 4, 5}, {4, 5, 6, 7}, {6, 7, 0, 1}};
  const ItemSet needed = {0, 1, 2, 3, 4, 5, 6, 7};
  const Coverage bal = divide_balanced(needed, own);
  const Coverage min = divide_min_devices(needed, own);
  EXPECT_TRUE(is_valid_coverage(bal, needed, own));
  EXPECT_TRUE(is_valid_coverage(min, needed, own));
  EXPECT_LE(min.involved_devices(), bal.involved_devices());
  EXPECT_LE(bal.max_share(), min.max_share());
}

TEST(DivideBalancedTest, UnownedItemThrows) {
  EXPECT_THROW(divide_balanced({0, 9}, {{0}}), ModelError);
  EXPECT_THROW(divide_min_devices({0, 9}, {{0}}), ModelError);
}

TEST(DivideMinDevicesTest, PrefersBigOwners) {
  const std::vector<ItemSet> own = {{0}, {1}, {0, 1, 2, 3}};
  const Coverage c = divide_min_devices({0, 1, 2, 3}, own);
  EXPECT_TRUE(is_valid_coverage(c, {0, 1, 2, 3}, own));
  EXPECT_EQ(c.involved_devices(), 1u);
  EXPECT_EQ(c.assigned[2].size(), 4u);
}

TEST(CoverageStatsTest, Accessors) {
  Coverage c;
  c.assigned = {{1, 2, 3}, {}, {4}};
  EXPECT_EQ(c.involved_devices(), 2u);
  EXPECT_EQ(c.max_share(), 3u);
  EXPECT_EQ(c.total_items(), 4u);
}

TEST(CoverageValidationTest, DetectsViolations) {
  const std::vector<ItemSet> own = {{0, 1}, {1, 2}};
  Coverage overlap;
  overlap.assigned = {{0, 1}, {1, 2}};  // item 1 assigned twice
  EXPECT_FALSE(is_valid_coverage(overlap, {0, 1, 2}, own));

  Coverage incomplete;
  incomplete.assigned = {{0}, {2}};  // item 1 missing
  EXPECT_FALSE(is_valid_coverage(incomplete, {0, 1, 2}, own));

  Coverage stolen;
  stolen.assigned = {{0, 2}, {1}};  // device 0 does not own item 2
  EXPECT_FALSE(is_valid_coverage(stolen, {0, 1, 2}, own));

  Coverage good;
  good.assigned = {{0, 1}, {2}};
  EXPECT_TRUE(is_valid_coverage(good, {0, 1, 2}, own));
}

class CoverageProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoverageProperty, BothAlgorithmsProduceValidCoverage) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 17);
  const auto n_items = static_cast<std::size_t>(rng.uniform_int(5, 60));
  const auto n_devices = static_cast<std::size_t>(rng.uniform_int(2, 15));

  std::vector<ItemSet> own(n_devices);
  for (std::size_t r = 0; r < n_items; ++r) {
    // every item owned at least once
    own[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n_devices) - 1))]
        .push_back(r);
    for (std::size_t d = 0; d < n_devices; ++d) {
      if (rng.bernoulli(0.15) && !set_contains(own[d], r)) {
        own[d] = set_union(own[d], {r});
      }
    }
  }
  ItemSet needed;
  for (std::size_t r = 0; r < n_items; ++r) {
    if (rng.bernoulli(0.8)) needed.push_back(r);
  }

  const Coverage bal = divide_balanced(needed, own);
  const Coverage min = divide_min_devices(needed, own);
  EXPECT_TRUE(is_valid_coverage(bal, needed, own)) << "seed " << GetParam();
  EXPECT_TRUE(is_valid_coverage(min, needed, own)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, CoverageProperty, ::testing::Range(0, 40));

TEST(CoverageComparisonTest, NumberUsesFewerDevicesOnAverage) {
  // DTA-Number's defining property vs DTA-Workload (Fig. 6(b)); individual
  // instances can tie, so compare averages across seeds.
  double bal_devices = 0.0, min_devices = 0.0;
  double bal_share = 0.0, min_share = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    mecsched::Rng rng(seed * 193 + 7);
    const std::size_t n_items = 60;
    const std::size_t n_devices = 12;
    std::vector<ItemSet> own(n_devices);
    for (std::size_t r = 0; r < n_items; ++r) {
      own[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(n_devices) - 1))]
          .push_back(r);
      for (std::size_t d = 0; d < n_devices; ++d) {
        if (rng.bernoulli(0.25) && !set_contains(own[d], r)) {
          own[d] = set_union(own[d], {r});
        }
      }
    }
    ItemSet needed;
    for (std::size_t r = 0; r < n_items; ++r) needed.push_back(r);
    const Coverage bal = divide_balanced(needed, own);
    const Coverage min = divide_min_devices(needed, own);
    bal_devices += static_cast<double>(bal.involved_devices());
    min_devices += static_cast<double>(min.involved_devices());
    bal_share += static_cast<double>(bal.max_share());
    min_share += static_cast<double>(min.max_share());
  }
  EXPECT_LT(min_devices, bal_devices);  // Fig. 6(b) shape
  EXPECT_LT(bal_share, min_share);      // Fig. 6(a) driver: balanced shares
}

}  // namespace
}  // namespace mecsched::dta
