#include "serve/sharder.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "mec/cost_model.h"
#include "mec/parameters.h"
#include "serve/population.h"

namespace mecsched::serve {
namespace {

// 8 devices round-robin over 4 stations: device i lives at station i % 4.
mec::Topology make_universe(std::size_t num_devices = 8,
                            std::size_t num_stations = 4) {
  std::vector<mec::Device> devices(num_devices);
  for (std::size_t i = 0; i < num_devices; ++i) {
    devices[i].id = i;
    devices[i].base_station = i % num_stations;
    devices[i].cpu_hz = 1.5e9;
    devices[i].radio = mec::kWiFi;
    devices[i].max_resource = 8.0;
  }
  std::vector<mec::BaseStation> stations(num_stations);
  for (std::size_t b = 0; b < num_stations; ++b) {
    stations[b].id = b;
    stations[b].cpu_hz = mec::SystemParameters{}.base_station_hz;
    stations[b].max_resource = 40.0;
  }
  return mec::Topology(std::move(devices), std::move(stations),
                       mec::SystemParameters{});
}

PendingTask pending(std::size_t id, std::size_t user, std::size_t owner,
                    double external_bytes) {
  PendingTask p;
  p.id = id;
  p.task.id = {user, 0};
  p.task.local_bytes = 500e3;
  p.task.external_bytes = external_bytes;
  p.task.external_owner = owner;
  p.task.resource = 1.0;
  p.task.deadline_s = 10.0;
  return p;
}

std::vector<double> full_device_residual(const mec::Topology& topo) {
  std::vector<double> r(topo.num_devices());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = topo.device(i).max_resource;
  return r;
}

std::vector<double> full_station_residual(const mec::Topology& topo) {
  std::vector<double> r(topo.num_base_stations());
  for (std::size_t b = 0; b < r.size(); ++b) {
    r[b] = topo.base_station(b).max_resource;
  }
  return r;
}

TEST(SharderTest, RejectsZeroShardsAndClampsExcess) {
  const mec::Topology universe = make_universe();
  EXPECT_THROW(Sharder(universe, {0}), ModelError);
  EXPECT_EQ(Sharder(universe, {100}).num_shards(), 4u);
}

TEST(SharderTest, StationBlocksAreContiguousAndMonotone) {
  const mec::Topology universe = make_universe();
  const Sharder sharder(universe, {2});
  EXPECT_EQ(sharder.shard_of_station(0), 0u);
  EXPECT_EQ(sharder.shard_of_station(1), 0u);
  EXPECT_EQ(sharder.shard_of_station(2), 1u);
  EXPECT_EQ(sharder.shard_of_station(3), 1u);
}

TEST(SharderTest, RoutesTaskByIssuersCurrentCell) {
  const mec::Topology universe = make_universe();
  const Sharder sharder(universe, {2});
  Population pop(universe);
  // Device 0 lives at station 0 (shard 0) but has migrated to station 3.
  pop.apply(Event::migrate(0.0, 0, 3));

  const PendingTask p = pending(0, 0, 0, 0.0);
  const std::vector<const PendingTask*> batch{&p};
  const auto problems =
      sharder.build(pop, full_device_residual(universe),
                    full_station_residual(universe), batch, {10.0});
  ASSERT_EQ(problems.size(), 1u);  // empty shard 0 omitted
  EXPECT_EQ(problems[0].shard, 1u);
  ASSERT_EQ(problems[0].task_ids.size(), 1u);
  EXPECT_EQ(problems[0].task_ids[0], 0u);
}

TEST(SharderTest, HaloOwnerPricesCrossShardFetchExactly) {
  const mec::Topology universe = make_universe();
  const Sharder sharder(universe, {2});
  const Population pop(universe);
  // Issuer 0 sits in shard 0; its external data lives on device 2 whose
  // cell (station 2) is in shard 1, so the owner comes in as a halo copy.
  const PendingTask p = pending(0, 0, 2, 200e3);
  const std::vector<const PendingTask*> batch{&p};
  const auto problems =
      sharder.build(pop, full_device_residual(universe),
                    full_station_residual(universe), batch, {10.0});
  ASSERT_EQ(problems.size(), 1u);
  const ShardProblem& shard = problems[0];
  EXPECT_EQ(shard.shard, 0u);
  ASSERT_EQ(shard.halo_devices, 1u);

  // The halo entry is the trailing device, maps back to universe id 2 and
  // carries no schedulable capacity.
  const std::size_t halo = shard.topology.num_devices() - 1;
  EXPECT_EQ(shard.device_global[halo], 2u);
  EXPECT_DOUBLE_EQ(shard.topology.device(halo).max_resource, 0.0);

  // Cost parity: the shard topology prices every placement of the task
  // exactly as the universe does — the halo carries the owner's radio and
  // its cell, so the cross-neighborhood fetch leg is identical.
  const mec::TaskCosts in_universe = mec::CostModel(universe).evaluate(p.task);
  ASSERT_EQ(shard.tasks.size(), 1u);
  const mec::TaskCosts in_shard =
      mec::CostModel(shard.topology).evaluate(shard.tasks[0]);
  for (const mec::Placement placement : mec::kAllPlacements) {
    EXPECT_DOUBLE_EQ(in_shard.latency(placement),
                     in_universe.latency(placement));
    EXPECT_DOUBLE_EQ(in_shard.energy(placement),
                     in_universe.energy(placement));
  }
}

TEST(SharderTest, ResidualCapacitiesOverrideTheUniverseCaps) {
  const mec::Topology universe = make_universe();
  const Sharder sharder(universe, {2});
  const Population pop(universe);
  std::vector<double> dev = full_device_residual(universe);
  std::vector<double> sta = full_station_residual(universe);
  dev[0] = 2.5;
  sta[0] = 7.0;
  const PendingTask p = pending(0, 0, 0, 0.0);
  const std::vector<const PendingTask*> batch{&p};
  const auto problems = sharder.build(pop, dev, sta, batch, {10.0});
  ASSERT_EQ(problems.size(), 1u);
  const ShardProblem& shard = problems[0];
  // Local device 0 of shard 0 is universe device 0.
  ASSERT_EQ(shard.device_global[0], 0u);
  EXPECT_DOUBLE_EQ(shard.topology.device(0).max_resource, 2.5);
  EXPECT_DOUBLE_EQ(shard.topology.base_station(0).max_resource, 7.0);
}

TEST(SharderTest, DownDevicesAreExcludedFromTheShardTopology) {
  const mec::Topology universe = make_universe();
  const Sharder sharder(universe, {2});
  Population pop(universe);
  pop.apply(Event::leave(0.0, 4));  // station 0, shard 0
  const PendingTask p = pending(0, 0, 0, 0.0);
  const std::vector<const PendingTask*> batch{&p};
  const auto problems =
      sharder.build(pop, full_device_residual(universe),
                    full_station_residual(universe), batch, {10.0});
  ASSERT_EQ(problems.size(), 1u);
  for (const std::size_t global : problems[0].device_global) {
    EXPECT_NE(global, 4u);
  }
}

TEST(SharderTest, DeadlineOverrideReplacesTheIssuedDeadline) {
  const mec::Topology universe = make_universe();
  const Sharder sharder(universe, {2});
  const Population pop(universe);
  const PendingTask p = pending(0, 0, 0, 0.0);  // issued deadline 10s
  const std::vector<const PendingTask*> batch{&p};
  const auto problems =
      sharder.build(pop, full_device_residual(universe),
                    full_station_residual(universe), batch, {3.25});
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_DOUBLE_EQ(problems[0].tasks[0].deadline_s, 3.25);
}

}  // namespace
}  // namespace mecsched::serve
