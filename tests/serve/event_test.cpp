#include "serve/event.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mecsched::serve {
namespace {

mec::Task small_task(std::size_t user) {
  mec::Task t;
  t.id = {user, 0};
  t.local_bytes = 1000.0;
  t.external_bytes = 0.0;
  t.external_owner = user;
  t.resource = 1.0;
  t.deadline_s = 1.0;
  return t;
}

TEST(TraceTest, StableSortKeepsInputOrderForSimultaneousEvents) {
  std::vector<Event> events;
  events.push_back(Event::leave(2.0, 0));
  events.push_back(Event::join(1.0, 1, 0));
  events.push_back(Event::migrate(1.0, 2, 0));  // same time as the join
  const Trace trace(std::move(events));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.events()[0].kind, EventKind::kDeviceJoin);
  EXPECT_EQ(trace.events()[1].kind, EventKind::kDeviceMigrate);
  EXPECT_EQ(trace.events()[2].kind, EventKind::kDeviceLeave);
  EXPECT_DOUBLE_EQ(trace.horizon_s(), 2.0);
}

TEST(TraceTest, CountsArrivalsSeparatelyFromChurn) {
  std::vector<Event> events;
  events.push_back(Event::arrival(0.5, small_task(0)));
  events.push_back(Event::leave(1.0, 1));
  events.push_back(Event::arrival(1.5, small_task(1)));
  const Trace trace(std::move(events));
  EXPECT_EQ(trace.arrivals(), 2u);
  EXPECT_EQ(trace.churn_events(), 1u);
}

TEST(TraceTest, ArrivalFactorySetsDeviceToIssuer) {
  const Event e = Event::arrival(0.1, small_task(4));
  EXPECT_EQ(e.device, 4u);
}

TEST(TraceTest, ValidateRejectsOutOfRangeDevice) {
  const Trace trace({Event::leave(0.0, 5)});
  EXPECT_THROW(trace.validate_against(5, 2), ModelError);
  EXPECT_NO_THROW(trace.validate_against(6, 2));
}

TEST(TraceTest, ValidateRejectsOutOfRangeStation) {
  const Trace trace({Event::join(0.0, 0, 3)});
  EXPECT_THROW(trace.validate_against(4, 3), ModelError);
  EXPECT_NO_THROW(trace.validate_against(4, 4));
}

TEST(TraceTest, ValidateRejectsNegativeTime) {
  const Trace trace({Event::leave(-1.0, 0)});
  EXPECT_THROW(trace.validate_against(1, 1), ModelError);
}

TEST(TraceTest, ValidateRejectsMalformedArrival) {
  mec::Task bad = small_task(0);
  bad.resource = 0.0;  // non-positive demand
  const Trace trace({Event::arrival(0.0, bad)});
  EXPECT_THROW(trace.validate_against(1, 1), ModelError);
}

TEST(TraceTest, ValidateRejectsExternalOwnerOutOfRange) {
  mec::Task t = small_task(0);
  t.external_bytes = 10.0;
  t.external_owner = 9;
  const Trace trace({Event::arrival(0.0, t)});
  EXPECT_THROW(trace.validate_against(2, 1), ModelError);
}

}  // namespace
}  // namespace mecsched::serve
