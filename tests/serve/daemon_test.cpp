// End-to-end daemon tests: replay determinism across worker counts, churn
// reconciliation, admission accounting, and task conservation.
#include "serve/daemon.h"

#include <gtest/gtest.h>

#include <sstream>

#include "mec/parameters.h"
#include "workload/serve_trace.h"

namespace mecsched::serve {
namespace {

mec::Topology make_universe(std::size_t num_devices,
                            std::size_t num_stations) {
  std::vector<mec::Device> devices(num_devices);
  for (std::size_t i = 0; i < num_devices; ++i) {
    devices[i].id = i;
    devices[i].base_station = i % num_stations;
    devices[i].cpu_hz = 1.5e9;
    devices[i].radio = mec::kWiFi;
    devices[i].max_resource = 8.0;
  }
  std::vector<mec::BaseStation> stations(num_stations);
  for (std::size_t b = 0; b < num_stations; ++b) {
    stations[b].id = b;
    stations[b].cpu_hz = mec::SystemParameters{}.base_station_hz;
    stations[b].max_resource = 40.0;
  }
  return mec::Topology(std::move(devices), std::move(stations),
                       mec::SystemParameters{});
}

// A task heavy enough to still be running several epochs after placement.
mec::Task slow_task(std::size_t user, std::size_t owner,
                    double external_bytes) {
  mec::Task t;
  t.id = {user, 0};
  t.local_bytes = 5e6;
  t.external_bytes = external_bytes;
  t.external_owner = owner;
  t.resource = 1.0;
  t.deadline_s = 100.0;
  return t;
}

workload::ServeWorkload churny_workload() {
  workload::ServeTraceConfig cfg;
  cfg.scenario.num_devices = 30;
  cfg.scenario.num_base_stations = 4;
  cfg.scenario.seed = 11;
  cfg.epochs = 5;
  cfg.epoch_s = 0.5;
  cfg.arrival_rate_per_s = 25.0;
  cfg.join_rate_per_s = 2.0;
  cfg.leave_rate_per_s = 3.0;
  cfg.migrate_rate_per_s = 3.0;
  return workload::make_serve_workload(cfg);
}

TEST(ServeDaemonTest, DecisionLogIsByteIdenticalAcrossWorkerCounts) {
  const workload::ServeWorkload w = churny_workload();
  ServeOptions opts;
  opts.sharding.num_shards = 3;

  opts.jobs = 1;
  DecisionLog log1;
  const ServeResult r1 = ServeDaemon(opts).run(w.universe, w.trace, &log1);

  opts.jobs = 4;
  DecisionLog log4;
  const ServeResult r4 = ServeDaemon(opts).run(w.universe, w.trace, &log4);

  EXPECT_EQ(log1.digest(), log4.digest());
  std::ostringstream csv1, csv4;
  log1.write_csv(csv1);
  log4.write_csv(csv4);
  EXPECT_EQ(csv1.str(), csv4.str());
  EXPECT_EQ(r1.decisions, r4.decisions);
  EXPECT_EQ(r1.completed, r4.completed);
  EXPECT_DOUBLE_EQ(r1.total_energy_j, r4.total_energy_j);
  EXPECT_GT(r1.decisions, 0u);
}

TEST(ServeDaemonTest, AdmittedTasksAllReachExactlyOneTerminalState) {
  const workload::ServeWorkload w = churny_workload();
  ServeOptions opts;
  opts.sharding.num_shards = 2;
  const ServeResult r = ServeDaemon(opts).run(w.universe, w.trace);
  EXPECT_FALSE(r.stopped_early);
  EXPECT_EQ(r.arrivals, r.admitted + r.rejected);
  EXPECT_EQ(r.admitted, r.completed + r.expired + r.lost_issuer +
                            r.exhausted + r.abandoned);
  EXPECT_GE(r.decisions, r.completed);
}

TEST(ServeDaemonTest, DepartingOwnerOrphansTheRunningTask) {
  const mec::Topology universe = make_universe(4, 2);
  std::vector<Event> events;
  events.push_back(Event::arrival(0.1, slow_task(0, 2, 1e6)));
  events.push_back(Event::leave(0.7, 2));  // the data owner departs
  const Trace trace(std::move(events));

  ServeOptions opts;
  opts.readmission.max_attempts = 2;
  DecisionLog log;
  const ServeResult r = ServeDaemon(opts).run(universe, trace, &log);
  // Decided at the first boundary, torn out when the owner left, and the
  // owner never returns: the retry budget runs out.
  EXPECT_GE(r.orphaned, 1u);
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(r.exhausted, 1u);
  EXPECT_EQ(r.completed, 0u);
  bool saw_retry = false, saw_exhausted = false;
  for (const DecisionRecord& rec : log.records()) {
    saw_retry |= rec.kind == DecisionKind::kRetry;
    saw_exhausted |= rec.kind == DecisionKind::kExhausted;
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_exhausted);
}

TEST(ServeDaemonTest, DepartingIssuerLosesTheRunningTask) {
  const mec::Topology universe = make_universe(4, 2);
  std::vector<Event> events;
  events.push_back(Event::arrival(0.1, slow_task(0, 0, 0.0)));
  events.push_back(Event::leave(0.7, 0));  // the issuer itself departs
  const Trace trace(std::move(events));
  const ServeResult r = ServeDaemon(ServeOptions{}).run(universe, trace);
  EXPECT_EQ(r.lost_issuer, 1u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.exhausted, 0u);
}

TEST(ServeDaemonTest, MidEpochMigrationReroutesTheTaskToTheNewCell) {
  // Two stations, two shards. Device 0 issues from station 0, then
  // migrates to station 1 before the window closes: the decision must be
  // made in shard 1, against the device's current cell.
  const mec::Topology universe = make_universe(4, 2);
  mec::Task task = slow_task(0, 0, 0.0);
  task.local_bytes = 100e3;  // light: decided and completed promptly
  std::vector<Event> events;
  events.push_back(Event::arrival(0.1, task));
  events.push_back(Event::migrate(0.2, 0, 1));
  const Trace trace(std::move(events));

  ServeOptions opts;
  opts.sharding.num_shards = 2;
  DecisionLog log;
  const ServeResult r = ServeDaemon(opts).run(universe, trace, &log);
  EXPECT_EQ(r.decisions, 1u);
  bool saw_decide = false;
  for (const DecisionRecord& rec : log.records()) {
    if (rec.kind != DecisionKind::kDecide) continue;
    saw_decide = true;
    EXPECT_EQ(rec.shard, 1u);
  }
  EXPECT_TRUE(saw_decide);
}

TEST(ServeDaemonTest, AdmissionRejectionsAreCountedAndLogged) {
  const workload::ServeWorkload w = churny_workload();
  ServeOptions opts;
  opts.admission.max_queue = 3;
  DecisionLog log;
  const ServeResult r = ServeDaemon(opts).run(w.universe, w.trace, &log);
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.arrivals, r.admitted + r.rejected);
  std::size_t reject_records = 0;
  for (const DecisionRecord& rec : log.records()) {
    reject_records += rec.kind == DecisionKind::kReject ? 1 : 0;
  }
  EXPECT_EQ(reject_records, r.rejected);
}

TEST(ServeDaemonTest, PreCancelledStopTokenEndsTheRunImmediately) {
  const workload::ServeWorkload w = churny_workload();
  CancellationSource stop;
  stop.request_cancel();
  const ServeResult r =
      ServeDaemon(ServeOptions{}).run(w.universe, w.trace, nullptr, stop.token());
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.events, 0u);
  EXPECT_EQ(r.decisions, 0u);
}

TEST(ServeDaemonTest, BatchSizeCapStillDrainsEveryArrival) {
  const workload::ServeWorkload w = churny_workload();
  ServeOptions opts;
  opts.batching.max_batch = 4;  // force many small epochs
  const ServeResult r = ServeDaemon(opts).run(w.universe, w.trace);
  EXPECT_EQ(r.arrivals, r.admitted + r.rejected);
  EXPECT_EQ(r.admitted, r.completed + r.expired + r.lost_issuer +
                            r.exhausted + r.abandoned);
}

}  // namespace
}  // namespace mecsched::serve
