// Reconciler edge cases: what churn does to in-flight work at shard
// boundaries — the scenarios docs/serve.md calls out.
#include "serve/reconciler.h"

#include <gtest/gtest.h>

namespace mecsched::serve {
namespace {

RunningTask running(std::size_t id, assign::Decision where, double finish_s) {
  RunningTask t;
  t.id = id;
  t.finish_s = finish_s;
  t.where = where;
  t.issuer = 0;
  t.station = 0;
  t.resource = 2.0;
  return t;
}

TEST(ReconcilerTest, IssuerLeaveLosesTheTask) {
  Reconciler rec;
  rec.start(running(1, assign::Decision::kEdge, 5.0));
  const Interruptions i = rec.observe(Event::leave(1.0, 0));
  ASSERT_EQ(i.lost_issuer.size(), 1u);
  EXPECT_EQ(i.lost_issuer[0], 1u);
  EXPECT_TRUE(rec.running().empty());
}

TEST(ReconcilerTest, OwnerLeaveOrphansOnlyExternalTasks) {
  Reconciler rec;
  RunningTask with_ext = running(1, assign::Decision::kEdge, 5.0);
  with_ext.has_external = true;
  with_ext.owner = 3;
  rec.start(with_ext);
  rec.start(running(2, assign::Decision::kEdge, 5.0));  // no external data
  const Interruptions i = rec.observe(Event::leave(1.0, 3));
  ASSERT_EQ(i.orphaned.size(), 1u);
  EXPECT_EQ(i.orphaned[0], 1u);
  EXPECT_TRUE(i.lost_issuer.empty());
  ASSERT_EQ(rec.running().size(), 1u);
  EXPECT_EQ(rec.running()[0].id, 2u);
}

TEST(ReconcilerTest, IssuerMigrationOrphansOffloadedWorkOnly) {
  Reconciler rec;
  rec.start(running(1, assign::Decision::kLocal, 5.0));
  rec.start(running(2, assign::Decision::kEdge, 5.0));
  rec.start(running(3, assign::Decision::kCloud, 5.0));
  const Interruptions i = rec.observe(Event::migrate(1.0, 0, 1));
  // Local work travels with the device; edge/cloud lose their delivery
  // path through the old cell.
  ASSERT_EQ(i.orphaned.size(), 2u);
  EXPECT_EQ(i.orphaned[0], 2u);
  EXPECT_EQ(i.orphaned[1], 3u);
  ASSERT_EQ(rec.running().size(), 1u);
  EXPECT_EQ(rec.running()[0].where, assign::Decision::kLocal);
}

TEST(ReconcilerTest, OwnerMigrationNeverInterrupts) {
  Reconciler rec;
  RunningTask t = running(1, assign::Decision::kEdge, 5.0);
  t.has_external = true;
  t.owner = 3;
  rec.start(t);
  const Interruptions i = rec.observe(Event::migrate(1.0, 3, 1));
  EXPECT_TRUE(i.orphaned.empty());
  EXPECT_TRUE(i.lost_issuer.empty());
}

TEST(ReconcilerTest, FinishedWorkSurvivesLaterChurn) {
  Reconciler rec;
  rec.start(running(1, assign::Decision::kEdge, 0.5));
  const Interruptions i = rec.observe(Event::leave(1.0, 0));
  EXPECT_TRUE(i.lost_issuer.empty());
  const std::vector<std::size_t> done = rec.collect_completions(1.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
}

TEST(ReconcilerTest, OccupancyChargesDevicesForLocalAndStationsForEdge) {
  Reconciler rec;
  rec.start(running(1, assign::Decision::kLocal, 5.0));
  rec.start(running(2, assign::Decision::kEdge, 5.0));
  rec.start(running(3, assign::Decision::kCloud, 5.0));
  rec.start(running(4, assign::Decision::kEdge, 0.5));  // already finished
  std::vector<double> dev(2, 0.0), sta(2, 0.0);
  rec.occupancy(1.0, dev, sta);
  EXPECT_DOUBLE_EQ(dev[0], 2.0);  // the local run
  EXPECT_DOUBLE_EQ(sta[0], 2.0);  // the live edge run only
  EXPECT_DOUBLE_EQ(dev[1], 0.0);
  EXPECT_DOUBLE_EQ(sta[1], 0.0);
}

TEST(ReconcilerTest, CollectCompletionsReturnsStartOrder) {
  Reconciler rec;
  rec.start(running(5, assign::Decision::kEdge, 0.2));
  rec.start(running(6, assign::Decision::kEdge, 0.1));
  const std::vector<std::size_t> done = rec.collect_completions(0.3);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 5u);
  EXPECT_EQ(done[1], 6u);
}

}  // namespace
}  // namespace mecsched::serve
