#include "serve/ingest.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mecsched::serve {
namespace {

mec::Task small_task(std::size_t user, std::size_t index) {
  mec::Task t;
  t.id = {user, index};
  t.local_bytes = 1000.0;
  t.external_owner = user;
  t.resource = 1.0;
  t.deadline_s = 1.0;
  return t;
}

Trace arrivals_at(std::vector<double> times) {
  std::vector<Event> events;
  for (std::size_t i = 0; i < times.size(); ++i) {
    events.push_back(Event::arrival(times[i], small_task(0, i)));
  }
  return Trace(std::move(events));
}

TEST(IngestCursorTest, RejectsNonPositiveWindow) {
  const Trace trace;
  EXPECT_THROW(IngestCursor(trace, {0.0, 0}), ModelError);
  EXPECT_THROW(IngestCursor(trace, {-1.0, 0}), ModelError);
}

TEST(IngestCursorTest, WindowClosesOnDeadline) {
  const Trace trace = arrivals_at({0.1, 0.4, 0.6, 1.2});
  IngestCursor cursor(trace, {0.5, 0});
  const Window w0 = cursor.next_window(0.0);
  EXPECT_DOUBLE_EQ(w0.close_s, 0.5);
  EXPECT_EQ(w0.events.size(), 2u);
  EXPECT_FALSE(w0.closed_by_size);
  const Window w1 = cursor.next_window(w0.close_s);
  EXPECT_DOUBLE_EQ(w1.close_s, 1.0);
  EXPECT_EQ(w1.events.size(), 1u);
  const Window w2 = cursor.next_window(w1.close_s);
  EXPECT_EQ(w2.events.size(), 1u);
  EXPECT_TRUE(cursor.exhausted());
}

TEST(IngestCursorTest, SizeCapClosesTheWindowEarly) {
  const Trace trace = arrivals_at({0.1, 0.2, 0.3, 0.4});
  IngestCursor cursor(trace, {10.0, 2});
  const Window w = cursor.next_window(0.0);
  EXPECT_TRUE(w.closed_by_size);
  EXPECT_EQ(w.events.size(), 2u);
  // The window closes at the capping arrival's own timestamp, so the next
  // window opens there instead of skipping ahead.
  EXPECT_DOUBLE_EQ(w.close_s, 0.2);
  const Window w2 = cursor.next_window(w.close_s);
  EXPECT_EQ(w2.events.size(), 2u);
}

TEST(IngestCursorTest, ChurnDoesNotCountTowardTheSizeCap) {
  std::vector<Event> events;
  events.push_back(Event::leave(0.05, 0));
  events.push_back(Event::arrival(0.1, small_task(0, 0)));
  events.push_back(Event::join(0.15, 0, 0));
  events.push_back(Event::arrival(0.2, small_task(0, 1)));
  const Trace trace(std::move(events));
  IngestCursor cursor(trace, {10.0, 2});
  const Window w = cursor.next_window(0.0);
  EXPECT_TRUE(w.closed_by_size);
  EXPECT_EQ(w.events.size(), 4u);  // both churn events ride along
}

TEST(AdmissionControlTest, UnlimitedByDefault) {
  AdmissionControl admission;
  for (std::size_t depth = 0; depth < 100; depth += 10) {
    EXPECT_TRUE(admission.offer(depth));
  }
  EXPECT_EQ(admission.admitted(), 10u);
  EXPECT_EQ(admission.rejected(), 0u);
}

TEST(AdmissionControlTest, RejectsWhenQueueIsFull) {
  AdmissionControl admission({2});
  EXPECT_TRUE(admission.offer(0));
  EXPECT_TRUE(admission.offer(1));
  EXPECT_FALSE(admission.offer(2));
  EXPECT_FALSE(admission.offer(3));
  EXPECT_EQ(admission.admitted(), 2u);
  EXPECT_EQ(admission.rejected(), 2u);
}

}  // namespace
}  // namespace mecsched::serve
