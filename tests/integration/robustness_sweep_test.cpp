// Capstone robustness sweep: LP-HTA must produce a constraint-feasible,
// deterministic plan across a wide random sweep of generator knobs —
// including regimes far outside the paper's defaults (tiny/huge systems,
// absurd data volumes, hostile deadlines, starved capacities, Shannon
// radios). Any crash, infeasibility or nondeterminism here is a bug.
#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "common/rng.h"
#include "workload/scenario.h"

namespace mecsched {
namespace {

workload::ScenarioConfig random_config(Rng& rng) {
  workload::ScenarioConfig cfg;
  cfg.num_devices = static_cast<std::size_t>(rng.uniform_int(1, 40));
  cfg.num_base_stations = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(cfg.num_devices)));
  cfg.num_tasks = static_cast<std::size_t>(rng.uniform_int(0, 120));
  cfg.max_input_kb = rng.uniform(10.0, 8000.0);
  cfg.min_input_fraction = rng.uniform(0.01, 0.9);
  cfg.external_ratio_max = rng.uniform(0.0, 1.5);
  cfg.cross_cluster_prob = rng.uniform(0.0, 1.0);
  cfg.wifi_prob = rng.uniform(0.0, 1.0);
  cfg.deadline_slack_min = rng.uniform(0.2, 1.5);
  cfg.deadline_slack_max =
      cfg.deadline_slack_min + rng.uniform(0.0, 3.0);
  cfg.resource_max_units = rng.uniform(0.5, 10.0);
  cfg.device_capacity_min = rng.uniform(0.0, 3.0);
  cfg.device_capacity_max =
      cfg.device_capacity_min + rng.uniform(0.0, 10.0);
  cfg.station_capacity_per_device = rng.uniform(0.1, 20.0);
  if (rng.bernoulli(0.5)) {
    cfg.result_kind = mec::ResultSizeKind::kConstant;
    cfg.result_const_kb = rng.uniform(0.1, 500.0);
  } else {
    cfg.result_ratio = rng.uniform(0.01, 0.9);
  }
  if (rng.bernoulli(0.3)) {
    cfg.rate_model = workload::ScenarioConfig::RateModel::kShannon;
  }
  cfg.seed = rng.uniform_int(0, 1 << 30);
  return cfg;
}

class RobustnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(RobustnessSweep, LpHtaIsFeasibleAndDeterministicEverywhere) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9173 + 31);
  for (int round = 0; round < 4; ++round) {
    const workload::ScenarioConfig cfg = random_config(rng);
    const workload::Scenario s = workload::make_scenario(cfg);
    const assign::HtaInstance inst(s.topology, s.tasks);

    assign::LpHtaReport report;
    const assign::Assignment a =
        assign::LpHta().assign_with_report(inst, report);
    ASSERT_EQ(a.size(), inst.num_tasks());

    const assign::FeasibilityReport feas = assign::check_feasibility(inst, a);
    EXPECT_TRUE(feas.ok) << "seed " << GetParam() << " round " << round
                         << ": "
                         << (feas.problems.empty() ? "" : feas.problems[0]);

    // Lemma 1 must hold in every regime with at least one placed task.
    if (report.lp_objective > 0.0) {
      EXPECT_LE(report.rounded_energy, 3.0 * report.lp_objective + 1e-6)
          << "seed " << GetParam() << " round " << round;
    }

    // Determinism: a fresh run over freshly generated identical inputs.
    const workload::Scenario s2 = workload::make_scenario(cfg);
    const assign::HtaInstance inst2(s2.topology, s2.tasks);
    EXPECT_EQ(assign::LpHta().assign(inst2).decisions, a.decisions)
        << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Wide, RobustnessSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace mecsched
