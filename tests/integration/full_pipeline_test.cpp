// End-to-end integration tests across module boundaries: workload
// generation -> assignment -> evaluation -> JSON round trip -> simulation.
#include <gtest/gtest.h>

#include <memory>

#include "assign/baselines.h"
#include "assign/best_response.h"
#include "assign/evaluator.h"
#include "assign/exact.h"
#include "assign/hgos.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "io/codec.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace mecsched {
namespace {

std::vector<std::unique_ptr<assign::Assigner>> all_algorithms() {
  std::vector<std::unique_ptr<assign::Assigner>> out;
  out.push_back(std::make_unique<assign::LpHta>());
  out.push_back(std::make_unique<assign::Hgos>());
  out.push_back(std::make_unique<assign::AllToCloud>());
  out.push_back(std::make_unique<assign::AllOffload>());
  out.push_back(std::make_unique<assign::LocalFirst>());
  out.push_back(std::make_unique<assign::RandomAssign>(7));
  out.push_back(std::make_unique<assign::BestResponse>());
  return out;
}

workload::Scenario scenario(std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = 50;
  cfg.num_devices = 15;
  cfg.num_base_stations = 3;
  return workload::make_scenario(cfg);
}

TEST(FullPipelineTest, EveryAlgorithmSurvivesTheWholeStack) {
  const auto s = scenario(101);
  const assign::HtaInstance inst(s.topology, s.tasks);

  for (const auto& algorithm : all_algorithms()) {
    SCOPED_TRACE(algorithm->name());
    const assign::Assignment plan = algorithm->assign(inst);
    ASSERT_EQ(plan.size(), inst.num_tasks());

    // evaluation and simulation agree on energy for the placed tasks
    const assign::Metrics m = assign::evaluate(inst, plan);
    const sim::SimResult r = sim::simulate(inst, plan);
    EXPECT_NEAR(r.total_energy_j, m.total_energy_j,
                1e-6 * (1.0 + m.total_energy_j));

    // JSON round trip preserves the plan exactly
    const auto restored =
        io::assignment_from_json(io::assignment_to_json(plan));
    EXPECT_EQ(restored.decisions, plan.decisions);
  }
}

TEST(FullPipelineTest, WholeStackIsDeterministic) {
  for (int run = 0; run < 2; ++run) {
    // identical inputs twice, through fresh objects
    const auto s1 = scenario(202);
    const auto s2 = scenario(202);
    const assign::HtaInstance i1(s1.topology, s1.tasks);
    const assign::HtaInstance i2(s2.topology, s2.tasks);
    const auto p1 = assign::LpHta().assign(i1);
    const auto p2 = assign::LpHta().assign(i2);
    EXPECT_EQ(p1.decisions, p2.decisions);
    const auto m1 = assign::evaluate(i1, p1);
    const auto m2 = assign::evaluate(i2, p2);
    EXPECT_DOUBLE_EQ(m1.total_energy_j, m2.total_energy_j);
  }
}

TEST(FullPipelineTest, ScenarioJsonRoundTripPreservesSimulation) {
  const auto s = scenario(303);
  const auto restored =
      io::scenario_from_json(io::scenario_to_json(s));

  const assign::HtaInstance a(s.topology, s.tasks);
  const assign::HtaInstance b(restored.topology, restored.tasks);
  const auto plan = assign::LpHta().assign(a);
  const auto plan_b = assign::LpHta().assign(b);
  ASSERT_EQ(plan.decisions, plan_b.decisions);

  const sim::SimResult ra = sim::simulate(a, plan);
  const sim::SimResult rb = sim::simulate(b, plan_b);
  EXPECT_DOUBLE_EQ(ra.makespan_s, rb.makespan_s);
  EXPECT_DOUBLE_EQ(ra.total_energy_j, rb.total_energy_j);
}

TEST(FullPipelineTest, ExactOptimumLowerBoundsEveryFeasibleHeuristic) {
  workload::ScenarioConfig cfg;
  cfg.seed = 404;
  cfg.num_tasks = 16;
  cfg.num_devices = 6;
  cfg.num_base_stations = 2;
  const auto s = workload::make_scenario(cfg);
  const assign::HtaInstance inst(s.topology, s.tasks);
  const assign::ExactResult opt = assign::ExactHta().solve(inst);
  if (!opt.proven_optimal) GTEST_SKIP() << "instance not provably solvable";

  for (const auto& algorithm : all_algorithms()) {
    const assign::Assignment plan = algorithm->assign(inst);
    if (!assign::check_feasibility(inst, plan).ok) continue;
    if (plan.cancelled() != opt.assignment.cancelled()) continue;
    const assign::Metrics m = assign::evaluate(inst, plan);
    EXPECT_GE(m.total_energy_j + 1e-6, opt.energy) << algorithm->name();
  }
}

TEST(FullPipelineTest, LpHtaDominatesBaselinesOnEveryAxisThatMatters) {
  // Averaged over several seeds: LP-HTA's energy below AllToC/AllOffload,
  // and its unsatisfied rate at least as good as every baseline's.
  double lp_energy = 0.0, alltoc_energy = 0.0, alloff_energy = 0.0;
  double lp_unsat = 0.0, best_other_unsat = 1e9;
  double hgos_unsat = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = scenario(seed);
    const assign::HtaInstance inst(s.topology, s.tasks);
    const auto lp = assign::evaluate(inst, assign::LpHta().assign(inst));
    const auto c = assign::evaluate(inst, assign::AllToCloud().assign(inst));
    const auto o = assign::evaluate(inst, assign::AllOffload().assign(inst));
    const auto h = assign::evaluate(inst, assign::Hgos().assign(inst));
    lp_energy += lp.total_energy_j;
    alltoc_energy += c.total_energy_j;
    alloff_energy += o.total_energy_j;
    lp_unsat += lp.unsatisfied_rate();
    hgos_unsat += h.unsatisfied_rate();
    best_other_unsat =
        std::min({best_other_unsat, c.unsatisfied_rate(), o.unsatisfied_rate()});
  }
  EXPECT_LT(lp_energy, alltoc_energy);
  EXPECT_LT(lp_energy, alloff_energy);
  EXPECT_LT(lp_unsat, hgos_unsat);
}

}  // namespace
}  // namespace mecsched
