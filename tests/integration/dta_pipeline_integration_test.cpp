// Integration tests for the divisible-task pipeline against the rest of
// the stack: scheduler equivalence, energy accounting cross-checks, and
// behaviour under extreme data distributions.
#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "dta/pipeline.h"
#include "workload/shared_data.h"

namespace mecsched::dta {
namespace {

workload::SharedDataConfig config(std::uint64_t seed) {
  workload::SharedDataConfig cfg;
  cfg.seed = seed;
  cfg.num_devices = 12;
  cfg.num_base_stations = 3;
  cfg.num_tasks = 18;
  cfg.num_items = 60;
  cfg.max_input_kb = 1200.0;
  return cfg;
}

TEST(DtaIntegrationTest, LpHtaAndGreedySchedulersAgreeWhenCapacityIsSlack) {
  // Rearranged tasks are local-only; with room on every device the LP
  // relaxation is integral at all-local, which is what the greedy picks.
  auto cfg = config(1);
  cfg.device_capacity_min = 100.0;
  cfg.device_capacity_max = 100.0;
  const auto scenario = workload::make_shared_scenario(cfg);

  DtaOptions lp_opts, greedy_opts;
  lp_opts.scheduler = PartialScheduler::kLpHta;
  greedy_opts.scheduler = PartialScheduler::kLocalGreedy;
  const DtaResult lp = run_dta(scenario, lp_opts);
  const DtaResult greedy = run_dta(scenario, greedy_opts);

  EXPECT_EQ(lp.assignment.decisions, greedy.assignment.decisions);
  EXPECT_NEAR(lp.total_energy_j, greedy.total_energy_j, 1e-9);
}

TEST(DtaIntegrationTest, ComputeEnergyMatchesEvaluatorRecount) {
  const auto scenario = workload::make_shared_scenario(config(2));
  const DtaResult r = run_dta(scenario);
  const assign::HtaInstance inst(scenario.topology, r.rearranged);
  const assign::Metrics m = assign::evaluate(inst, r.assignment);
  EXPECT_NEAR(r.compute_energy_j, m.total_energy_j, 1e-9);
}

TEST(DtaIntegrationTest, SingleOwnerDegeneratesToOneDevice) {
  // One device owns everything: both strategies must involve exactly it.
  auto cfg = config(3);
  cfg.num_devices = 5;
  cfg.num_base_stations = 1;
  auto scenario = workload::make_shared_scenario(cfg);
  ItemSet everything;
  for (std::size_t r = 0; r < scenario.universe.num_items(); ++r) {
    everything.push_back(r);
  }
  scenario.ownership.assign(scenario.topology.num_devices(), {});
  scenario.ownership[2] = everything;

  for (DtaStrategy strat : {DtaStrategy::kWorkload, DtaStrategy::kNumber}) {
    const DtaResult r = run_dta(scenario, DtaOptions{strat});
    EXPECT_EQ(r.involved_devices, 1u) << to_string(strat);
    EXPECT_FALSE(r.coverage.assigned[2].empty());
  }
}

TEST(DtaIntegrationTest, DisjointOwnershipMakesStrategiesIdentical) {
  // With zero replication there is no choice to make: both strategies
  // produce the same (unique) coverage.
  auto cfg = config(4);
  cfg.max_extra_owners = 0;
  const auto scenario = workload::make_shared_scenario(cfg);
  const DtaResult w = run_dta(scenario, DtaOptions{DtaStrategy::kWorkload});
  const DtaResult n = run_dta(scenario, DtaOptions{DtaStrategy::kNumber});
  EXPECT_EQ(w.coverage.assigned, n.coverage.assigned);
  EXPECT_EQ(w.involved_devices, n.involved_devices);
  EXPECT_NEAR(w.total_energy_j, n.total_energy_j, 1e-9);
}

TEST(DtaIntegrationTest, CoordinationEnergyScalesWithResultSize) {
  auto small = config(5);
  small.result_ratio = 0.05;
  auto large = config(5);
  large.result_ratio = 0.4;
  const DtaResult rs = run_dta(workload::make_shared_scenario(small));
  const DtaResult rl = run_dta(workload::make_shared_scenario(large));
  EXPECT_LT(rs.coordination_energy_j, rl.coordination_energy_j);
}

TEST(DtaIntegrationTest, HolisticViewIsConsistentAcrossStrategies) {
  // to_holistic_tasks ignores the coverage strategy; it only depends on
  // the scenario, so both strategies compare against the same yardstick.
  const auto scenario = workload::make_shared_scenario(config(6));
  const auto h1 = to_holistic_tasks(scenario);
  const auto h2 = to_holistic_tasks(scenario);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_DOUBLE_EQ(h1[i].local_bytes, h2[i].local_bytes);
    EXPECT_EQ(h1[i].external_owner, h2[i].external_owner);
  }
}

}  // namespace
}  // namespace mecsched::dta
