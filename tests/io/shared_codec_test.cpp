#include "io/shared_codec.h"

#include <gtest/gtest.h>

#include "dta/pipeline.h"
#include "workload/shared_data.h"

namespace mecsched::io {
namespace {

dta::SharedDataScenario sample() {
  workload::SharedDataConfig cfg;
  cfg.seed = 44;
  cfg.num_devices = 8;
  cfg.num_base_stations = 2;
  cfg.num_tasks = 10;
  cfg.num_items = 30;
  return workload::make_shared_scenario(cfg);
}

TEST(SharedCodecTest, DivisibleTaskRoundTrip) {
  dta::DivisibleTask t;
  t.id = {2, 5};
  t.items = {1, 4, 9};
  t.op_bytes = 512.0;
  t.cycles_per_byte = 400.0;
  t.result_kind = mec::ResultSizeKind::kConstant;
  t.result_const_bytes = 99.0;
  t.resource = 1.5;
  t.deadline_s = 3.0;
  const dta::DivisibleTask r = divisible_task_from_json(divisible_task_to_json(t));
  EXPECT_EQ(r.id, t.id);
  EXPECT_EQ(r.items, t.items);
  EXPECT_DOUBLE_EQ(r.op_bytes, t.op_bytes);
  EXPECT_EQ(r.result_kind, t.result_kind);
  EXPECT_DOUBLE_EQ(r.deadline_s, t.deadline_s);
}

TEST(SharedCodecTest, ScenarioRoundTripPreservesPipelineResults) {
  const auto s = sample();
  const auto restored = shared_scenario_from_json(shared_scenario_to_json(s));

  // equality of the pieces
  EXPECT_EQ(restored.ownership, s.ownership);
  ASSERT_EQ(restored.tasks.size(), s.tasks.size());
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    EXPECT_EQ(restored.tasks[i].items, s.tasks[i].items);
  }
  // and of the derived computation
  const dta::DtaResult a = dta::run_dta(s);
  const dta::DtaResult b = dta::run_dta(restored);
  EXPECT_EQ(a.assignment.decisions, b.assignment.decisions);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.involved_devices, b.involved_devices);
}

TEST(SharedCodecTest, ResultSerializesAggregates) {
  const auto s = sample();
  const dta::DtaResult r = dta::run_dta(s);
  const Json j = dta_result_to_json(r);
  EXPECT_DOUBLE_EQ(j.at("total_energy_j").as_number(), r.total_energy_j);
  EXPECT_DOUBLE_EQ(j.at("involved_devices").as_number(),
                   static_cast<double>(r.involved_devices));
  EXPECT_EQ(j.at("share_sizes").as_array().size(),
            s.topology.num_devices());
}

TEST(SharedCodecTest, BadResultKindRejected) {
  Json j = divisible_task_to_json(dta::DivisibleTask{});
  j.as_object()["result_kind"] = Json("blob");
  EXPECT_THROW(divisible_task_from_json(j), JsonError);
}

}  // namespace
}  // namespace mecsched::io
