#include "io/codec.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "common/error.h"

namespace mecsched::io {
namespace {

workload::Scenario sample_scenario() {
  workload::ScenarioConfig cfg;
  cfg.num_devices = 8;
  cfg.num_base_stations = 2;
  cfg.num_tasks = 15;
  cfg.seed = 33;
  return workload::make_scenario(cfg);
}

TEST(CodecTest, TopologyRoundTrip) {
  const auto s = sample_scenario();
  const mec::Topology restored =
      topology_from_json(topology_to_json(s.topology));
  ASSERT_EQ(restored.num_devices(), s.topology.num_devices());
  ASSERT_EQ(restored.num_base_stations(), s.topology.num_base_stations());
  for (std::size_t i = 0; i < restored.num_devices(); ++i) {
    EXPECT_DOUBLE_EQ(restored.device(i).cpu_hz, s.topology.device(i).cpu_hz);
    EXPECT_EQ(restored.device(i).base_station,
              s.topology.device(i).base_station);
    EXPECT_DOUBLE_EQ(restored.device(i).radio.upload_bps,
                     s.topology.device(i).radio.upload_bps);
    EXPECT_DOUBLE_EQ(restored.device(i).max_resource,
                     s.topology.device(i).max_resource);
  }
  EXPECT_DOUBLE_EQ(restored.params().kappa, s.topology.params().kappa);
}

TEST(CodecTest, TaskRoundTripPreservesEveryField) {
  mec::Task t;
  t.id = {3, 9};
  t.local_bytes = 123456.0;
  t.external_bytes = 7890.0;
  t.external_owner = 5;
  t.cycles_per_byte = 441.0;
  t.result_kind = mec::ResultSizeKind::kConstant;
  t.result_const_bytes = 42.0;
  t.resource = 2.5;
  t.deadline_s = 1.75;
  const mec::Task r = task_from_json(task_to_json(t));
  EXPECT_EQ(r.id, t.id);
  EXPECT_DOUBLE_EQ(r.local_bytes, t.local_bytes);
  EXPECT_DOUBLE_EQ(r.external_bytes, t.external_bytes);
  EXPECT_EQ(r.external_owner, t.external_owner);
  EXPECT_DOUBLE_EQ(r.cycles_per_byte, t.cycles_per_byte);
  EXPECT_EQ(r.result_kind, t.result_kind);
  EXPECT_DOUBLE_EQ(r.result_const_bytes, t.result_const_bytes);
  EXPECT_DOUBLE_EQ(r.resource, t.resource);
  EXPECT_DOUBLE_EQ(r.deadline_s, t.deadline_s);
}

TEST(CodecTest, ScenarioRoundTripPreservesCosts) {
  // The real invariant: a restored scenario produces identical assignments
  // and energies, not just equal fields.
  const auto s = sample_scenario();
  const workload::Scenario r = scenario_from_json(scenario_to_json(s));

  const assign::HtaInstance a(s.topology, s.tasks);
  const assign::HtaInstance b(r.topology, r.tasks);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t t = 0; t < a.num_tasks(); ++t) {
    for (mec::Placement p : mec::kAllPlacements) {
      EXPECT_DOUBLE_EQ(a.energy(t, p), b.energy(t, p));
      EXPECT_DOUBLE_EQ(a.latency(t, p), b.latency(t, p));
    }
  }
  const auto plan_a = assign::LpHta().assign(a);
  const auto plan_b = assign::LpHta().assign(b);
  EXPECT_EQ(plan_a.decisions, plan_b.decisions);
}

TEST(CodecTest, ConfigRoundTrip) {
  workload::ScenarioConfig c;
  c.num_tasks = 77;
  c.max_input_kb = 1234.0;
  c.result_kind = mec::ResultSizeKind::kConstant;
  c.seed = 99;
  const workload::ScenarioConfig r = config_from_json(config_to_json(c));
  EXPECT_EQ(r.num_tasks, 77u);
  EXPECT_DOUBLE_EQ(r.max_input_kb, 1234.0);
  EXPECT_EQ(r.result_kind, mec::ResultSizeKind::kConstant);
  EXPECT_EQ(r.seed, 99u);
}

TEST(CodecTest, SparseConfigKeepsDefaults) {
  const workload::ScenarioConfig defaults;
  const workload::ScenarioConfig r =
      config_from_json(Json::parse(R"({"num_tasks": 5})"));
  EXPECT_EQ(r.num_tasks, 5u);
  EXPECT_EQ(r.num_devices, defaults.num_devices);
  EXPECT_DOUBLE_EQ(r.deadline_slack_max, defaults.deadline_slack_max);
}

TEST(CodecTest, AssignmentRoundTrip) {
  assign::Assignment a;
  a.decisions = {assign::Decision::kLocal, assign::Decision::kEdge,
                 assign::Decision::kCloud, assign::Decision::kCancelled};
  const assign::Assignment r = assignment_from_json(assignment_to_json(a));
  EXPECT_EQ(r.decisions, a.decisions);
}

TEST(CodecTest, BadDecisionStringThrows) {
  EXPECT_THROW(assignment_from_json(Json::parse(R"({"decisions":["moon"]})")),
               JsonError);
}

TEST(CodecTest, MetricsSerializeAllFields) {
  assign::Metrics m;
  m.num_tasks = 10;
  m.cancelled = 1;
  m.deadline_violations = 2;
  m.total_energy_j = 5.5;
  const Json j = metrics_to_json(m);
  EXPECT_DOUBLE_EQ(j.at("num_tasks").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(j.at("unsatisfied_rate").as_number(), 0.3);
  EXPECT_DOUBLE_EQ(j.at("total_energy_j").as_number(), 5.5);
}

TEST(FileIoTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "codec_file_test.json";
  write_file(path, "{\"x\": 1}");
  EXPECT_EQ(read_file(path), "{\"x\": 1}");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/nope.json"), ModelError);
  EXPECT_THROW(write_file("/nonexistent/nope.json", "x"), ModelError);
}

}  // namespace
}  // namespace mecsched::io
