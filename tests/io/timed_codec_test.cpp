#include <gtest/gtest.h>

#include "assign/online.h"
#include "io/codec.h"
#include "workload/arrivals.h"

namespace mecsched::io {
namespace {

workload::TimedScenario sample() {
  workload::ArrivalConfig cfg;
  cfg.scenario.seed = 91;
  cfg.scenario.num_tasks = 18;
  cfg.scenario.num_devices = 6;
  cfg.scenario.num_base_stations = 2;
  cfg.arrival_rate_per_s = 10.0;
  return workload::make_timed_scenario(cfg);
}

TEST(TimedCodecTest, RoundTripPreservesReleasesAndTasks) {
  const auto s = sample();
  const auto restored =
      timed_scenario_from_json(timed_scenario_to_json(s));
  ASSERT_EQ(restored.tasks.size(), s.tasks.size());
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.tasks[i].release_s, s.tasks[i].release_s);
    EXPECT_DOUBLE_EQ(restored.tasks[i].task.local_bytes,
                     s.tasks[i].task.local_bytes);
    EXPECT_DOUBLE_EQ(restored.tasks[i].task.deadline_s,
                     s.tasks[i].task.deadline_s);
  }
}

TEST(TimedCodecTest, RoundTripPreservesOnlineScheduling) {
  const auto s = sample();
  const auto restored = timed_scenario_from_json(timed_scenario_to_json(s));
  const auto a = assign::OnlineScheduler().run(s.topology, s.tasks);
  const auto b =
      assign::OnlineScheduler().run(restored.topology, restored.tasks);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].decision, b.outcomes[i].decision);
  }
}

TEST(TimedCodecTest, OnlineResultSerializes) {
  const auto s = sample();
  const auto r = assign::OnlineScheduler().run(s.topology, s.tasks);
  const Json j = online_result_to_json(r);
  EXPECT_EQ(j.at("outcomes").as_array().size(), s.tasks.size());
  EXPECT_DOUBLE_EQ(j.at("total_energy_j").as_number(), r.total_energy_j);
  EXPECT_EQ(Json::parse(j.dump()), j);
}

}  // namespace
}  // namespace mecsched::io
