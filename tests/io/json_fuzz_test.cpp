// Deterministic fuzzing of the JSON parser: random byte strings and
// mutated valid documents must either parse or throw JsonError — never
// crash, hang, or corrupt memory — and anything that parses must round-trip
// through dump() -> parse() unchanged.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "io/json.h"

namespace mecsched::io {
namespace {

std::string random_bytes(mecsched::Rng& rng, std::size_t max_len) {
  const auto len = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s += static_cast<char>(rng.uniform_int(1, 127));
  }
  return s;
}

// A syntactically valid random document to mutate.
Json random_document(mecsched::Rng& rng, int depth = 0) {
  const int kind = static_cast<int>(rng.uniform_int(0, depth >= 3 ? 3 : 5));
  switch (kind) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng.bernoulli(0.5));
    case 2:
      return Json(rng.uniform(-1e6, 1e6));
    case 3:
      return Json(random_bytes(rng, 12));
    case 4: {
      JsonArray arr;
      const auto n = static_cast<std::size_t>(rng.uniform_int(0, 4));
      for (std::size_t i = 0; i < n; ++i) {
        arr.push_back(random_document(rng, depth + 1));
      }
      return Json(std::move(arr));
    }
    default: {
      JsonObject obj;
      const auto n = static_cast<std::size_t>(rng.uniform_int(0, 4));
      for (std::size_t i = 0; i < n; ++i) {
        // std::string("k") + ... trips GCC 12's -Wrestrict false positive
        // (PR 105329) in release builds; build the key incrementally.
        std::string key = "k";
        key += std::to_string(i);
        obj[std::move(key)] = random_document(rng, depth + 1);
      }
      return Json(std::move(obj));
    }
  }
}

class JsonFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzz, RandomBytesNeverCrash) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 7);
  for (int i = 0; i < 200; ++i) {
    const std::string input = random_bytes(rng, 60);
    try {
      const Json parsed = Json::parse(input);
      // If it parsed, it must round-trip exactly.
      EXPECT_EQ(Json::parse(parsed.dump()), parsed) << input;
    } catch (const JsonError&) {
      // expected for almost all random inputs
    }
  }
}

TEST_P(JsonFuzz, MutatedValidDocumentsNeverCrash) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2003 + 13);
  for (int i = 0; i < 100; ++i) {
    std::string text = random_document(rng).dump();
    // flip / insert / delete a few characters
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(text.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          text[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:
          text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
          break;
        default:
          text.erase(pos, 1);
          break;
      }
    }
    try {
      const Json parsed = Json::parse(text);
      EXPECT_EQ(Json::parse(parsed.dump()), parsed);
    } catch (const JsonError&) {
    }
  }
}

TEST_P(JsonFuzz, GeneratedDocumentsAlwaysRoundTrip) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 3001 + 29);
  for (int i = 0; i < 100; ++i) {
    const Json doc = random_document(rng);
    EXPECT_EQ(Json::parse(doc.dump()), doc);
    EXPECT_EQ(Json::parse(doc.dump(2)), doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Range(0, 10));

TEST(JsonFuzzDepth, DeeplyNestedInputDoesNotOverflowQuickly) {
  // 10k nested arrays blow past the parser's depth cap: it must reject
  // them with JsonError instead of overflowing the stack (recursive
  // descent; sanitizer builds have much larger frames).
  std::string deep(10'000, '[');
  deep.append(10'000, ']');
  EXPECT_THROW(Json::parse(deep), JsonError);

  // Nesting below the cap still parses.
  std::string ok(400, '[');
  ok.append(400, ']');
  const Json j = Json::parse(ok);
  EXPECT_TRUE(j.is_array());
}

}  // namespace
}  // namespace mecsched::io
