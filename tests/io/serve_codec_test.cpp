// Serve workload codec: JSON round trips preserve the trace byte-exactly
// (order included), which is what makes `serve --replay` reproducible.
#include "io/serve_codec.h"

#include <gtest/gtest.h>

#include "io/json.h"
#include "workload/serve_trace.h"

namespace mecsched::io {
namespace {

workload::ServeWorkload sample_workload() {
  workload::ServeTraceConfig cfg;
  cfg.scenario.num_devices = 15;
  cfg.scenario.num_base_stations = 3;
  cfg.scenario.seed = 21;
  cfg.epochs = 3;
  cfg.arrival_rate_per_s = 15.0;
  cfg.leave_rate_per_s = 1.0;
  cfg.join_rate_per_s = 1.0;
  cfg.migrate_rate_per_s = 1.0;
  return workload::make_serve_workload(cfg);
}

TEST(ServeCodecTest, WorkloadRoundTripsThroughJsonText) {
  const workload::ServeWorkload original = sample_workload();
  const std::string text = serve_workload_to_json(original).dump();
  const workload::ServeWorkload loaded =
      serve_workload_from_json(Json::parse(text));

  ASSERT_EQ(loaded.trace.size(), original.trace.size());
  EXPECT_EQ(loaded.trace.arrivals(), original.trace.arrivals());
  EXPECT_EQ(loaded.universe.num_devices(), original.universe.num_devices());
  for (std::size_t i = 0; i < original.trace.size(); ++i) {
    const serve::Event& a = original.trace.events()[i];
    const serve::Event& b = loaded.trace.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.station, b.station);
    if (a.kind == serve::EventKind::kTaskArrival) {
      EXPECT_EQ(a.task.id.user, b.task.id.user);
      EXPECT_EQ(a.task.id.index, b.task.id.index);
      EXPECT_DOUBLE_EQ(a.task.local_bytes, b.task.local_bytes);
      EXPECT_DOUBLE_EQ(a.task.external_bytes, b.task.external_bytes);
      EXPECT_EQ(a.task.external_owner, b.task.external_owner);
      EXPECT_DOUBLE_EQ(a.task.resource, b.task.resource);
      EXPECT_DOUBLE_EQ(a.task.deadline_s, b.task.deadline_s);
    }
  }
  // Serializing again is byte-stable (sorted keys, same numbers).
  EXPECT_EQ(serve_workload_to_json(loaded).dump(), text);
}

TEST(ServeCodecTest, EventCodecCoversEveryKind) {
  mec::Task t;
  t.id = {2, 5};
  t.local_bytes = 100.0;
  t.external_owner = 2;
  t.resource = 1.0;
  t.deadline_s = 1.0;
  const serve::Event events[] = {
      serve::Event::arrival(0.25, t),
      serve::Event::join(0.5, 1, 2),
      serve::Event::leave(0.75, 3),
      serve::Event::migrate(1.0, 4, 0),
  };
  for (const serve::Event& e : events) {
    const serve::Event back = serve_event_from_json(serve_event_to_json(e));
    EXPECT_EQ(back.kind, e.kind);
    EXPECT_DOUBLE_EQ(back.time_s, e.time_s);
    EXPECT_EQ(back.device, e.device);
    if (e.kind == serve::EventKind::kDeviceJoin ||
        e.kind == serve::EventKind::kDeviceMigrate) {
      EXPECT_EQ(back.station, e.station);
    }
  }
}

TEST(ServeCodecTest, UnknownKindIsAnError) {
  Json j = serve_event_to_json(serve::Event::leave(0.0, 0));
  j.as_object()["kind"] = Json(std::string("teleport"));
  EXPECT_THROW(serve_event_from_json(j), JsonError);
}

}  // namespace
}  // namespace mecsched::io
