#include "io/trace_codec.h"

#include <gtest/gtest.h>

#include "assign/lp_hta.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace mecsched::io {
namespace {

sim::SimResult run_sim(bool contention) {
  workload::ScenarioConfig cfg;
  cfg.seed = 8;
  cfg.num_tasks = 20;
  cfg.num_devices = 8;
  cfg.num_base_stations = 2;
  const auto s = workload::make_scenario(cfg);
  const assign::HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);
  sim::SimOptions opts;
  opts.model_contention = contention;
  return sim::simulate(inst, plan, opts);
}

TEST(TraceCodecTest, ExportsTimeline) {
  const sim::SimResult r = run_sim(false);
  const Json j = sim_result_to_json(r);
  EXPECT_DOUBLE_EQ(j.at("makespan_s").as_number(), r.makespan_s);
  EXPECT_EQ(j.at("timeline").as_array().size(), r.timelines.size());
  EXPECT_FALSE(j.contains("utilization"));  // no contention data
}

TEST(TraceCodecTest, ContentionAddsUtilization) {
  const sim::SimResult r = run_sim(true);
  const Json j = sim_result_to_json(r);
  ASSERT_TRUE(j.contains("utilization"));
  const Json& u = j.at("utilization");
  EXPECT_EQ(u.at("device_cpu_busy_s").as_array().size(), 8u);
  EXPECT_EQ(u.at("station_cpu_busy_s").as_array().size(), 2u);
  EXPECT_GT(u.at("peak_utilization").as_number(), 0.0);
  EXPECT_LE(u.at("peak_utilization").as_number(), 1.0 + 1e-9);
}

TEST(TraceCodecTest, OutputIsParsableJson) {
  const Json j = sim_result_to_json(run_sim(true));
  EXPECT_EQ(Json::parse(j.dump()), j);
  EXPECT_EQ(Json::parse(j.dump(2)), j);
}

TEST(SimUtilizationTest, BusyTimesNeverExceedMakespan) {
  const sim::SimResult r = run_sim(true);
  for (const auto* v :
       {&r.device_uplink_busy_s, &r.device_downlink_busy_s,
        &r.device_cpu_busy_s, &r.station_cpu_busy_s}) {
    for (double b : *v) {
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, r.makespan_s + 1e-9);
    }
  }
  EXPECT_LE(r.wan_busy_s, r.makespan_s + 1e-9);
}

TEST(SimUtilizationTest, NoContentionLeavesStatsEmpty) {
  const sim::SimResult r = run_sim(false);
  EXPECT_TRUE(r.device_cpu_busy_s.empty());
  EXPECT_DOUBLE_EQ(r.peak_utilization(), 0.0);
}

}  // namespace
}  // namespace mecsched::io
