#include "io/json.h"

#include <gtest/gtest.h>

namespace mecsched::io {
namespace {

TEST(JsonValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(3.25).as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json(7).as_number(), 7.0);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_TRUE(Json(JsonArray{}).is_array());
  EXPECT_TRUE(Json(JsonObject{}).is_object());
}

TEST(JsonValueTest, TypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_number(), JsonError);
  EXPECT_THROW(Json(true).as_array(), JsonError);
  EXPECT_THROW(Json().as_object(), JsonError);
}

TEST(JsonValueTest, ObjectAccess) {
  JsonObject o;
  o["a"] = 1.5;
  const Json j(std::move(o));
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("b"));
  EXPECT_DOUBLE_EQ(j.at("a").as_number(), 1.5);
  EXPECT_THROW(j.at("b"), JsonError);
  EXPECT_DOUBLE_EQ(j.number_or("a", 9.0), 1.5);
  EXPECT_DOUBLE_EQ(j.number_or("b", 9.0), 9.0);
}

TEST(JsonDumpTest, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3.5).dump(), "-3.5");
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonDumpTest, Containers) {
  JsonObject o;
  o["b"] = Json(JsonArray{Json(1), Json(2)});
  o["a"] = Json("x");
  EXPECT_EQ(Json(o).dump(), "{\"a\":\"x\",\"b\":[1,2]}");  // sorted keys
  EXPECT_EQ(Json(JsonArray{}).dump(), "[]");
  EXPECT_EQ(Json(JsonObject{}).dump(), "{}");
}

TEST(JsonDumpTest, PrettyPrint) {
  JsonObject o;
  o["a"] = 1;
  const std::string s = Json(o).dump(2);
  EXPECT_NE(s.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(JsonDumpTest, RejectsNonFinite) {
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()).dump(),
               JsonError);
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse(" true ").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(Json::parse("\"hey\"").as_string(), "hey");
}

TEST(JsonParseTest, NestedStructures) {
  const Json j = Json::parse(R"({"a": [1, {"b": null}, "s"], "c": true})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_TRUE(j.at("a").as_array()[1].at("b").is_null());
  EXPECT_TRUE(j.at("c").as_bool());
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\t\n\"\\b\/")").as_string(), "a\t\n\"\\b/");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");     // é
  EXPECT_EQ(Json::parse(R"("中")").as_string(), "\xe4\xb8\xad"); // 中
  // surrogate pair: U+1F600
  EXPECT_EQ(Json::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, Whitespace) {
  EXPECT_DOUBLE_EQ(Json::parse(" \n\t[ 1 ,\r 2 ] ").as_array()[1].as_number(),
                   2.0);
}

TEST(JsonParseTest, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "01x", "\"unterminated", "{\"a\" 1}",
        "[1] trailing", "{\"a\":}", "\"\\u12\"", "\"\\ud800\"",
        "\"bad\\q\"", "nan", "--1"}) {
    EXPECT_THROW(Json::parse(bad), JsonError) << bad;
  }
}

TEST(JsonRoundTripTest, DumpParseIdentity) {
  JsonObject o;
  o["name"] = "mecsched";
  o["version"] = 1.0;
  o["tags"] = Json(JsonArray{Json("edge"), Json("lp")});
  JsonObject nested;
  nested["deep"] = Json(JsonArray{Json(1), Json(true), Json(nullptr)});
  o["nested"] = Json(std::move(nested));
  const Json original(std::move(o));

  EXPECT_EQ(Json::parse(original.dump()), original);
  EXPECT_EQ(Json::parse(original.dump(2)), original);
}

}  // namespace
}  // namespace mecsched::io
