#include "ilp/branch_bound.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "ilp/knapsack.h"

namespace mecsched::ilp {
namespace {

using lp::Problem;
using lp::Relation;

TEST(BranchBoundTest, PureLpPassesThrough) {
  Problem p;
  const auto x = p.add_variable(-1.0, 0.0, 2.5);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 2.0);
  const auto r = BranchAndBound().solve(p, {});
  ASSERT_EQ(r.status, BnbStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-8);
}

TEST(BranchBoundTest, RoundsFractionalOptimum) {
  // max x + y with x + 2y <= 3.5 and x,y binary -> x=1, y=1 (obj -2).
  Problem p;
  const auto x = p.add_variable(-1.0, 0.0, 1.0);
  const auto y = p.add_variable(-1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 3.5);
  const auto r = BranchAndBound().solve(p, {x, y});
  ASSERT_EQ(r.status, BnbStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-8);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(BranchBoundTest, IntegralityForcesWorseObjective) {
  // LP optimum is fractional: max 5x+4y, 6x+4y<=24, x+2y<=6 -> (3, 1.5),
  // value 21. Integer optimum: (4,0), value 20.
  Problem p;
  const auto x = p.add_variable(-5.0, 0.0, 10.0);
  const auto y = p.add_variable(-4.0, 0.0, 10.0);
  p.add_constraint({{x, 6.0}, {y, 4.0}}, Relation::kLessEqual, 24.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 6.0);
  const auto r = BranchAndBound().solve(p, {x, y});
  ASSERT_EQ(r.status, BnbStatus::kOptimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-7);
  EXPECT_NEAR(std::round(r.x[0]), r.x[0], 1e-6);
  EXPECT_NEAR(std::round(r.x[1]), r.x[1], 1e-6);
}

TEST(BranchBoundTest, InfeasibleIntegerProgram) {
  // 0.4 <= x <= 0.6 has no integer point.
  Problem p;
  const auto x = p.add_variable(1.0, 0.4, 0.6);
  const auto r = BranchAndBound().solve(p, {x});
  EXPECT_EQ(r.status, BnbStatus::kInfeasible);
}

TEST(BranchBoundTest, InfeasibleLpRelaxation) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 3.0);
  const auto r = BranchAndBound().solve(p, {x});
  EXPECT_EQ(r.status, BnbStatus::kInfeasible);
}

TEST(BranchBoundTest, RejectsUnboundedIntegerVariable) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, lp::kInfinity);
  EXPECT_THROW(BranchAndBound().solve(p, {x}), ModelError);
}

TEST(BranchBoundTest, NodeLimitReported) {
  BnbOptions opts;
  opts.max_nodes = 1;
  Problem p;
  const auto x = p.add_variable(-1.0, 0.0, 1.0);
  const auto y = p.add_variable(-1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 2.5);
  const auto r = BranchAndBound(opts).solve(p, {x, y});
  EXPECT_EQ(r.status, BnbStatus::kNodeLimit);
}

class BnbVsKnapsack : public ::testing::TestWithParam<int> {};

TEST_P(BnbVsKnapsack, MatchesKnapsackOracleOnRandom01Programs) {
  // Knapsack as a MIP: max v.x s.t. w.x <= cap, x binary. The dedicated
  // knapsack solver is the oracle.
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
  std::vector<double> values(n), weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = rng.uniform(0.1, 50.0);
    weights[i] = rng.uniform(0.1, 10.0);
  }
  const double cap = rng.uniform(1.0, 30.0);

  Problem p;
  std::vector<std::size_t> vars;
  std::vector<lp::Term> row;
  for (std::size_t i = 0; i < n; ++i) {
    vars.push_back(p.add_variable(-values[i], 0.0, 1.0));
    row.push_back({vars.back(), weights[i]});
  }
  p.add_constraint(std::move(row), Relation::kLessEqual, cap);

  const auto mip = BranchAndBound().solve(p, vars);
  const auto oracle = knapsack_brute_force(values, weights, cap);
  ASSERT_EQ(mip.status, BnbStatus::kOptimal);
  EXPECT_NEAR(-mip.objective, oracle.value, 1e-7)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, BnbVsKnapsack, ::testing::Range(0, 25));

}  // namespace
}  // namespace mecsched::ilp
