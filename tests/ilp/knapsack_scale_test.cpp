// Larger-instance agreement between the knapsack DP and branch-and-bound
// (the 2^n brute force caps at 25 items; these run at 120).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ilp/knapsack.h"

namespace mecsched::ilp {
namespace {

class KnapsackScale : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackScale, DpAndBnbAgreeOnHundredItemInstances) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 811 + 5);
  const std::size_t n = 120;
  std::vector<double> values(n);
  std::vector<std::int64_t> int_weights(n);
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = rng.uniform(1.0, 200.0);
    int_weights[i] = rng.uniform_int(1, 40);
    weights[i] = static_cast<double>(int_weights[i]);
  }
  const std::int64_t cap = rng.uniform_int(100, 600);

  const KnapsackResult dp = knapsack_dp(values, int_weights, cap);
  const KnapsackResult bb =
      knapsack_branch_bound(values, weights, static_cast<double>(cap));
  EXPECT_NEAR(dp.value, bb.value, 1e-6) << "seed " << GetParam();

  // Both selections must respect the capacity and match their values.
  double dp_w = 0.0, bb_v = 0.0, bb_w = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dp.taken[i]) dp_w += weights[i];
    if (bb.taken[i]) {
      bb_v += values[i];
      bb_w += weights[i];
    }
  }
  EXPECT_LE(dp_w, static_cast<double>(cap) + 1e-9);
  EXPECT_LE(bb_w, static_cast<double>(cap) + 1e-9);
  EXPECT_NEAR(bb_v, bb.value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackScale, ::testing::Range(0, 8));

TEST(KnapsackScaleTest, AllItemsFitWhenCapacityIsHuge) {
  std::vector<double> values(50, 1.0);
  std::vector<std::int64_t> weights(50, 3);
  const KnapsackResult r = knapsack_dp(values, weights, 1000);
  EXPECT_DOUBLE_EQ(r.value, 50.0);
  for (bool taken : r.taken) EXPECT_TRUE(taken);
}

}  // namespace
}  // namespace mecsched::ilp
