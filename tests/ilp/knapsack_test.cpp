#include "ilp/knapsack.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace mecsched::ilp {
namespace {

TEST(KnapsackDpTest, EmptyInstance) {
  const auto r = knapsack_dp({}, {}, 10);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.taken.empty());
}

TEST(KnapsackDpTest, ClassicInstance) {
  // values {60,100,120}, weights {10,20,30}, cap 50 -> 220 (items 1,2).
  const auto r = knapsack_dp({60, 100, 120}, {10, 20, 30}, 50);
  EXPECT_DOUBLE_EQ(r.value, 220.0);
  EXPECT_FALSE(r.taken[0]);
  EXPECT_TRUE(r.taken[1]);
  EXPECT_TRUE(r.taken[2]);
}

TEST(KnapsackDpTest, ZeroCapacityTakesNothingWithPositiveWeights) {
  const auto r = knapsack_dp({5, 5}, {1, 1}, 0);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(KnapsackDpTest, ZeroWeightItemsAlwaysTaken) {
  const auto r = knapsack_dp({5, 7}, {0, 3}, 2);
  EXPECT_DOUBLE_EQ(r.value, 5.0);
  EXPECT_TRUE(r.taken[0]);
}

TEST(KnapsackDpTest, RejectsNegativeInputs) {
  EXPECT_THROW(knapsack_dp({1.0}, {-1}, 5), ModelError);
  EXPECT_THROW(knapsack_dp({-1.0}, {1}, 5), ModelError);
  EXPECT_THROW(knapsack_dp({1.0}, {1}, -5), ModelError);
  EXPECT_THROW(knapsack_dp({1.0}, {1, 2}, 5), ModelError);
}

TEST(KnapsackBnbTest, MatchesClassicInstance) {
  const auto r = knapsack_branch_bound({60, 100, 120}, {10, 20, 30}, 50);
  EXPECT_DOUBLE_EQ(r.value, 220.0);
}

TEST(KnapsackBnbTest, HandlesFractionalWeights) {
  const auto r = knapsack_branch_bound({10, 10, 10}, {0.5, 0.6, 0.7}, 1.2);
  // best pair: 0.5 + 0.6 = 1.1 <= 1.2 -> value 20
  EXPECT_DOUBLE_EQ(r.value, 20.0);
}

TEST(KnapsackBruteTest, RejectsOversizedInstance) {
  std::vector<double> v(26, 1.0), w(26, 1.0);
  EXPECT_THROW(knapsack_brute_force(v, w, 5.0), ModelError);
}

class KnapsackAgreement : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackAgreement, AllThreeSolversAgreeOnRandomInstances) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 14));
  std::vector<double> values(n);
  std::vector<double> weights(n);
  std::vector<std::int64_t> int_weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = rng.uniform(0.0, 100.0);
    int_weights[i] = rng.uniform_int(0, 30);
    weights[i] = static_cast<double>(int_weights[i]);
  }
  const std::int64_t cap = rng.uniform_int(0, 80);

  const auto dp = knapsack_dp(values, int_weights, cap);
  const auto bb = knapsack_branch_bound(values, weights,
                                        static_cast<double>(cap));
  const auto bf = knapsack_brute_force(values, weights,
                                       static_cast<double>(cap));
  EXPECT_NEAR(dp.value, bf.value, 1e-9) << "DP vs brute, seed " << GetParam();
  EXPECT_NEAR(bb.value, bf.value, 1e-9) << "BnB vs brute, seed " << GetParam();

  // The reported selection must be consistent with the reported value.
  double dp_check = 0.0, dp_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dp.taken[i]) {
      dp_check += values[i];
      dp_weight += weights[i];
    }
  }
  EXPECT_NEAR(dp_check, dp.value, 1e-9);
  EXPECT_LE(dp_weight, static_cast<double>(cap) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, KnapsackAgreement, ::testing::Range(0, 30));

}  // namespace
}  // namespace mecsched::ilp
