// Budget behaviour of the branch-and-bound search: kDeadline stops carry
// the incumbent and a proven bound (the anytime half of the contract), and
// injected solver faults either degrade deterministically or surface as
// SolverError — never as a silently wrong "optimal".
#include "ilp/branch_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>

#include "common/chaos_hook.h"
#include "common/deadline.h"
#include "common/error.h"
#include "lp/problem.h"

namespace mecsched::ilp {
namespace {

using lp::Problem;
using lp::Relation;

class FaultAt final : public chaos::Hook {
 public:
  FaultAt(std::string engine, std::size_t iteration, chaos::Action action)
      : engine_(std::move(engine)), iteration_(iteration), action_(action) {
    chaos::arm(this);
  }
  ~FaultAt() override { chaos::arm(nullptr); }
  FaultAt(const FaultAt&) = delete;
  FaultAt& operator=(const FaultAt&) = delete;

  chaos::Action probe(const char* engine, std::size_t, std::size_t,
                      std::size_t iteration) override {
    return engine_ == engine && iteration_ == iteration ? action_
                                                        : chaos::Action::kNone;
  }

 private:
  std::string engine_;
  std::size_t iteration_;
  chaos::Action action_;
};

// An integer program whose LP relaxation is fractional, so the search must
// actually branch: max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, x,y int.
Problem branching_problem(std::vector<std::size_t>& integer_vars) {
  Problem p;
  const auto x = p.add_variable(-5.0, 0.0, 10.0);
  const auto y = p.add_variable(-4.0, 0.0, 10.0);
  p.add_constraint({{x, 6.0}, {y, 4.0}}, Relation::kLessEqual, 24.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 6.0);
  integer_vars = {x, y};
  return p;
}

TEST(BnbDeadline, ExpiredTokenStopsBeforeTheRootNode) {
  std::vector<std::size_t> ints;
  const Problem p = branching_problem(ints);
  BnbOptions opts;
  opts.cancel = CancellationToken(Deadline::after_s(0.0));
  const BnbResult r = BranchAndBound(opts).solve(p, ints);
  EXPECT_EQ(r.status, BnbStatus::kDeadline);
  EXPECT_TRUE(r.x.empty());
  EXPECT_TRUE(std::isinf(r.bound_gap()));
}

TEST(BnbDeadline, OptimalSolveHasZeroGapAndTightBound) {
  std::vector<std::size_t> ints;
  const Problem p = branching_problem(ints);
  const BnbResult r = BranchAndBound().solve(p, ints);
  ASSERT_EQ(r.status, BnbStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.best_bound, r.objective);
  EXPECT_DOUBLE_EQ(r.bound_gap(), 0.0);
}

TEST(BnbDeadline, CancelMidSearchReportsIncumbentAndBound) {
  std::vector<std::size_t> ints;
  const Problem p = branching_problem(ints);
  const BnbResult full = BranchAndBound().solve(p, ints);
  ASSERT_EQ(full.status, BnbStatus::kOptimal);
  ASSERT_GT(full.nodes_explored, 1u);

  for (std::size_t k = 1; k < full.nodes_explored; ++k) {
    const FaultAt fault("bnb", k, chaos::Action::kCancel);
    const BnbResult r = BranchAndBound().solve(p, ints);
    ASSERT_EQ(r.status, BnbStatus::kDeadline) << "cutoff " << k;
    // The bound is valid whenever finite: it never exceeds the optimum.
    if (std::isfinite(r.best_bound)) {
      EXPECT_LE(r.best_bound, full.objective + 1e-9) << "cutoff " << k;
    }
    // An incumbent, if any, is a genuine integral feasible point, so its
    // objective is no better than the optimum and the gap brackets it.
    if (!r.x.empty()) {
      EXPECT_GE(r.objective, full.objective - 1e-9) << "cutoff " << k;
      EXPECT_LE(r.objective - r.bound_gap(), full.objective + 1e-9)
          << "cutoff " << k;
      for (const std::size_t v : ints) {
        EXPECT_NEAR(std::round(r.x[v]), r.x[v], 1e-6) << "cutoff " << k;
      }
    }
  }
}

TEST(BnbDeadline, InjectedErrorFaultThrows) {
  std::vector<std::size_t> ints;
  const Problem p = branching_problem(ints);
  const FaultAt fault("bnb", 0, chaos::Action::kError);
  EXPECT_THROW(BranchAndBound().solve(p, ints), SolverError);
}

TEST(BnbDeadline, DefaultBudgetReachesTheSearch) {
  std::vector<std::size_t> ints;
  const Problem p = branching_problem(ints);
  set_default_solve_budget_ms(1e-6);
  const BnbResult r = BranchAndBound().solve(p, ints);
  set_default_solve_budget_ms(0.0);
  EXPECT_EQ(r.status, BnbStatus::kDeadline);
}

}  // namespace
}  // namespace mecsched::ilp
