#include "mec/topology.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace mecsched::mec {
namespace {

using units::gigahertz;

std::vector<Device> three_devices() {
  return {
      {0, 0, gigahertz(1.0), k4G, 5.0},
      {1, 0, gigahertz(2.0), kWiFi, 5.0},
      {2, 1, gigahertz(1.5), k4G, 5.0},
  };
}

std::vector<BaseStation> two_stations() {
  return {{0, gigahertz(4.0), 50.0}, {1, gigahertz(4.0), 50.0}};
}

TEST(TopologyTest, BuildsClusters) {
  const Topology t(three_devices(), two_stations(), SystemParameters{});
  EXPECT_EQ(t.num_devices(), 3u);
  EXPECT_EQ(t.num_base_stations(), 2u);
  EXPECT_EQ(t.cluster(0).size(), 2u);
  EXPECT_EQ(t.cluster(1).size(), 1u);
  EXPECT_EQ(t.cluster(1)[0], 2u);
}

TEST(TopologyTest, SameClusterQueries) {
  const Topology t(three_devices(), two_stations(), SystemParameters{});
  EXPECT_TRUE(t.same_cluster(0, 1));
  EXPECT_FALSE(t.same_cluster(0, 2));
  EXPECT_TRUE(t.same_cluster(2, 2));
}

TEST(TopologyTest, AccessorsValidateIndices) {
  const Topology t(three_devices(), two_stations(), SystemParameters{});
  EXPECT_THROW(t.device(3), ModelError);
  EXPECT_THROW(t.base_station(2), ModelError);
  EXPECT_THROW(t.cluster(2), ModelError);
}

TEST(TopologyTest, RejectsNonDenseDeviceIds) {
  auto devs = three_devices();
  devs[1].id = 7;
  EXPECT_THROW(Topology(devs, two_stations(), SystemParameters{}), ModelError);
}

TEST(TopologyTest, RejectsUnknownBaseStation) {
  auto devs = three_devices();
  devs[0].base_station = 9;
  EXPECT_THROW(Topology(devs, two_stations(), SystemParameters{}), ModelError);
}

TEST(TopologyTest, RejectsZeroFrequency) {
  auto devs = three_devices();
  devs[0].cpu_hz = 0.0;
  EXPECT_THROW(Topology(devs, two_stations(), SystemParameters{}), ModelError);
}

TEST(TopologyTest, RejectsEmptyStations) {
  EXPECT_THROW(Topology({}, {}, SystemParameters{}), ModelError);
}

TEST(TopologyTest, EmptyDeviceListIsValid) {
  const Topology t({}, two_stations(), SystemParameters{});
  EXPECT_EQ(t.num_devices(), 0u);
  EXPECT_TRUE(t.cluster(0).empty());
}

}  // namespace
}  // namespace mecsched::mec
