#include "mec/task.h"

#include <gtest/gtest.h>

namespace mecsched::mec {
namespace {

TEST(TaskTest, InputBytesSumsLocalAndExternal) {
  Task t;
  t.local_bytes = 1000.0;
  t.external_bytes = 500.0;
  EXPECT_DOUBLE_EQ(t.input_bytes(), 1500.0);
}

TEST(TaskTest, ProportionalResultSize) {
  Task t;
  t.local_bytes = 1000.0;
  t.result_ratio = 0.2;
  EXPECT_DOUBLE_EQ(t.result_bytes(), 200.0);
}

TEST(TaskTest, ConstantResultSize) {
  Task t;
  t.local_bytes = 1000.0;
  t.result_kind = ResultSizeKind::kConstant;
  t.result_const_bytes = 42.0;
  EXPECT_DOUBLE_EQ(t.result_bytes(), 42.0);
}

TEST(TaskTest, CyclesUseLinearModel) {
  Task t;
  t.local_bytes = 100.0;
  t.external_bytes = 50.0;
  t.cycles_per_byte = 330.0;
  EXPECT_DOUBLE_EQ(t.cycles(), 330.0 * 150.0);
}

TEST(TaskIdTest, EqualityAndToString) {
  const TaskId a{3, 7};
  const TaskId b{3, 7};
  const TaskId c{3, 8};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(to_string(a), "T(3,7)");
}

}  // namespace
}  // namespace mecsched::mec
