#include "mec/radio.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "mec/parameters.h"

namespace mecsched::mec {
namespace {

TEST(ShannonTest, ZeroGainGivesZeroRate) {
  EXPECT_DOUBLE_EQ(shannon_rate(1e6, 0.0, 1.0, 1e-9), 0.0);
}

TEST(ShannonTest, UnitSnrGivesBandwidth) {
  // log2(1 + 1) = 1, so rate == bandwidth.
  EXPECT_DOUBLE_EQ(shannon_rate(20e6, 1e-7, 1.0, 1e-7), 20e6);
}

TEST(ShannonTest, RateGrowsWithPower) {
  const double lo = shannon_rate(1e6, 1e-6, 0.5, 1e-7);
  const double hi = shannon_rate(1e6, 1e-6, 2.0, 1e-7);
  EXPECT_GT(hi, lo);
}

TEST(ShannonTest, RateIsLinearInBandwidth) {
  const double r1 = shannon_rate(1e6, 1e-6, 1.0, 1e-7);
  const double r2 = shannon_rate(2e6, 1e-6, 1.0, 1e-7);
  EXPECT_NEAR(r2, 2.0 * r1, 1e-6);
}

TEST(ShannonTest, ValidatesInputs) {
  EXPECT_THROW(shannon_rate(0.0, 1.0, 1.0, 1.0), ModelError);
  EXPECT_THROW(shannon_rate(1e6, -1.0, 1.0, 1.0), ModelError);
  EXPECT_THROW(shannon_rate(1e6, 1.0, -1.0, 1.0), ModelError);
  EXPECT_THROW(shannon_rate(1e6, 1.0, 1.0, 0.0), ModelError);
}

TEST(RadioProfileTest, TableOneValues) {
  EXPECT_DOUBLE_EQ(k4G.download_bps, 13.76e6);
  EXPECT_DOUBLE_EQ(k4G.upload_bps, 5.85e6);
  EXPECT_DOUBLE_EQ(k4G.tx_power_w, 7.32);
  EXPECT_DOUBLE_EQ(k4G.rx_power_w, 1.6);
  EXPECT_DOUBLE_EQ(kWiFi.download_bps, 54.97e6);
  EXPECT_DOUBLE_EQ(kWiFi.upload_bps, 12.88e6);
  EXPECT_DOUBLE_EQ(kWiFi.tx_power_w, 15.7);
  EXPECT_DOUBLE_EQ(kWiFi.rx_power_w, 2.7);
}

}  // namespace
}  // namespace mecsched::mec
