// The breakdown's legs must sum exactly to the CostModel totals for every
// placement and task shape — otherwise the explanation lies.
#include "mec/cost_breakdown.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "mec/parameters.h"

namespace mecsched::mec {
namespace {

using units::gigahertz;

Topology topo() {
  std::vector<Device> devices = {
      {0, 0, gigahertz(1.0), k4G, 10.0},
      {1, 0, gigahertz(2.0), kWiFi, 10.0},
      {2, 1, gigahertz(1.5), k4G, 10.0},
  };
  std::vector<BaseStation> stations = {{0, gigahertz(4.0), 50.0},
                                       {1, gigahertz(4.0), 50.0}};
  return Topology(std::move(devices), std::move(stations),
                  SystemParameters{});
}

class BreakdownMatchesModel : public ::testing::TestWithParam<int> {};

TEST_P(BreakdownMatchesModel, LegsSumToTotalsForRandomTasks) {
  const Topology t = topo();
  const CostModel model(t);
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 1);

  for (int i = 0; i < 20; ++i) {
    Task task;
    task.id = {static_cast<std::size_t>(rng.uniform_int(0, 2)), 0};
    task.local_bytes = rng.uniform(0.0, 3e6);
    task.external_bytes = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 1e6);
    do {
      task.external_owner = static_cast<std::size_t>(rng.uniform_int(0, 2));
    } while (task.external_owner == task.id.user && task.external_bytes > 0);
    task.deadline_s = 100.0;

    for (Placement p : kAllPlacements) {
      const CostBreakdown b = explain(t, task, p);
      const CostEntry e = model.evaluate(task, p);
      EXPECT_NEAR(b.total_energy(), e.energy_j, 1e-9 * (1.0 + e.energy_j))
          << to_string(p) << " i=" << i;
      EXPECT_NEAR(b.total_time(), e.latency_s(),
                  1e-9 * (1.0 + e.latency_s()))
          << to_string(p) << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BreakdownMatchesModel, ::testing::Range(0, 8));

TEST(CostBreakdownTest, LegsAreLabelled) {
  const Topology t = topo();
  Task task;
  task.id = {0, 0};
  task.local_bytes = 1e6;
  task.external_bytes = 5e5;
  task.external_owner = 2;  // cross-cluster
  const CostBreakdown local = explain(t, task, Placement::kLocal);
  bool saw_backhaul = false, saw_compute = false;
  for (const CostLeg& leg : local.legs) {
    saw_backhaul = saw_backhaul || leg.label.find("backhaul") != std::string::npos;
    saw_compute = saw_compute || leg.label.find("compute") != std::string::npos;
  }
  EXPECT_TRUE(saw_backhaul);
  EXPECT_TRUE(saw_compute);
}

TEST(CostBreakdownTest, ParallelLegsOnlyForOffloadedPlacements) {
  const Topology t = topo();
  Task task;
  task.id = {0, 0};
  task.local_bytes = 1e6;
  task.external_bytes = 5e5;
  task.external_owner = 1;
  for (const CostLeg& leg : explain(t, task, Placement::kLocal).legs) {
    EXPECT_FALSE(leg.parallel) << leg.label;
  }
  int parallel = 0;
  for (const CostLeg& leg : explain(t, task, Placement::kEdge).legs) {
    parallel += leg.parallel ? 1 : 0;
  }
  EXPECT_EQ(parallel, 2);  // beta path || alpha uplink
}

TEST(CostBreakdownTest, PureLocalTaskIsOneLeg) {
  const Topology t = topo();
  Task task;
  task.id = {1, 0};
  task.local_bytes = 1e6;
  const CostBreakdown b = explain(t, task, Placement::kLocal);
  ASSERT_EQ(b.legs.size(), 1u);
  EXPECT_EQ(b.legs[0].label, "device compute");
}

}  // namespace
}  // namespace mecsched::mec
