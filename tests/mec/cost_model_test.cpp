// Numeric transcription checks of the Sec. II formulas: every expected
// value below is recomputed by hand from the paper's model with the
// default constants, then compared against CostModel.
#include "mec/cost_model.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "mec/parameters.h"
#include "mec/task.h"
#include "mec/topology.h"

namespace mecsched::mec {
namespace {

using units::gigahertz;

// dev0: BS0, 1 GHz, 4G. dev1: BS0, 2 GHz, Wi-Fi. dev2: BS1, 1.5 GHz, 4G.
Topology make_test_topology() {
  std::vector<Device> devices = {
      {0, 0, gigahertz(1.0), k4G, 10.0},
      {1, 0, gigahertz(2.0), kWiFi, 10.0},
      {2, 1, gigahertz(1.5), k4G, 10.0},
  };
  std::vector<BaseStation> stations = {
      {0, gigahertz(4.0), 100.0},
      {1, gigahertz(4.0), 100.0},
  };
  return Topology(std::move(devices), std::move(stations), SystemParameters{});
}

Task make_task(std::size_t user, double alpha, double beta,
               std::size_t owner) {
  Task t;
  t.id = {user, 0};
  t.local_bytes = alpha;
  t.external_bytes = beta;
  t.external_owner = owner;
  t.deadline_s = 1e9;
  return t;
}

class CostModelTest : public ::testing::Test {
 protected:
  Topology topo_ = make_test_topology();
  CostModel model_{topo_};
};

TEST_F(CostModelTest, LocalComputeTimeAndEnergy) {
  // α=1 MB, β=0.5 MB: cycles = 330 * 1.5e6 = 4.95e8.
  const Task t = make_task(0, 1e6, 0.5e6, 1);
  const CostEntry e = model_.evaluate(t, Placement::kLocal);
  EXPECT_NEAR(e.compute_s, 4.95e8 / 1e9, 1e-9);             // t^(C) = 0.495 s
  // E^(C) = κ λX f² = 1e-27 * 4.95e8 * (1e9)^2 = 0.495 J, plus radio energy.
  // Radio: owner (Wi-Fi) uploads 0.5 MB, issuer (4G) downloads it.
  const double t_up = 0.5e6 * 8 / kWiFi.upload_bps;
  const double t_down = 0.5e6 * 8 / k4G.download_bps;
  const double expected_energy =
      0.495 + kWiFi.tx_power_w * t_up + k4G.rx_power_w * t_down;
  EXPECT_NEAR(e.transfer_s, t_up + t_down, 1e-9);
  EXPECT_NEAR(e.energy_j, expected_energy, 1e-6);
}

TEST_F(CostModelTest, LocalWithoutExternalDataHasNoTransfer) {
  const Task t = make_task(0, 1e6, 0.0, 1);
  const CostEntry e = model_.evaluate(t, Placement::kLocal);
  EXPECT_DOUBLE_EQ(e.transfer_s, 0.0);
  // pure compute energy
  EXPECT_NEAR(e.energy_j, 1e-27 * 330.0 * 1e6 * 1e18, 1e-9);
}

TEST_F(CostModelTest, CrossClusterFetchAddsBackhaul) {
  const Task same = make_task(0, 1e6, 0.5e6, 1);   // owner in BS0
  const Task cross = make_task(0, 1e6, 0.5e6, 2);  // owner in BS1
  const CostEntry e_same = model_.evaluate(same, Placement::kLocal);
  const CostEntry e_cross = model_.evaluate(cross, Placement::kLocal);

  // Both owners here happen to differ in radio; compare against explicit
  // backhaul terms instead of each other.
  const SystemParameters p;
  const double bb_time = p.bs_to_bs_latency_s + 0.5e6 * 8 / p.bs_to_bs_rate_bps;
  const double up2 = 0.5e6 * 8 / k4G.upload_bps;    // dev2 uplink
  const double down0 = 0.5e6 * 8 / k4G.download_bps;
  EXPECT_NEAR(e_cross.transfer_s, up2 + down0 + bb_time, 1e-9);
  EXPECT_GT(e_cross.energy_j,
            e_same.energy_j - 10.0);  // sanity: both finite, same order
  // backhaul energy present exactly once
  const double bb_energy = p.bs_to_bs_power_w * 0.5e6 * 8 / p.bs_to_bs_rate_bps;
  const double expected = 0.495 + k4G.tx_power_w * up2 +
                          k4G.rx_power_w * down0 + bb_energy;
  EXPECT_NEAR(e_cross.energy_j, expected, 1e-6);
}

TEST_F(CostModelTest, EdgeCostMatchesPaperFormula) {
  const Task t = make_task(0, 1e6, 0.5e6, 1);
  const CostEntry e = model_.evaluate(t, Placement::kEdge);

  EXPECT_NEAR(e.compute_s, 4.95e8 / 4e9, 1e-9);  // f_s = 4 GHz

  const double beta_up = 0.5e6 * 8 / kWiFi.upload_bps;   // owner uplink
  const double alpha_up = 1e6 * 8 / k4G.upload_bps;      // issuer uplink
  const double result = 0.2 * 1.5e6;                     // η(α+β)
  const double result_down = result * 8 / k4G.download_bps;
  EXPECT_NEAR(e.transfer_s, std::max(beta_up, alpha_up) + result_down, 1e-9);

  const double expected_energy = kWiFi.tx_power_w * beta_up +
                                 k4G.tx_power_w * alpha_up +
                                 k4G.rx_power_w * result_down;
  EXPECT_NEAR(e.energy_j, expected_energy, 1e-6);
}

TEST_F(CostModelTest, CloudCostIncludesWanTerms) {
  const Task t = make_task(0, 1e6, 0.5e6, 1);
  const CostEntry e = model_.evaluate(t, Placement::kCloud);
  const SystemParameters p;

  EXPECT_NEAR(e.compute_s, 4.95e8 / p.cloud_hz, 1e-12);

  const double beta_up = 0.5e6 * 8 / kWiFi.upload_bps;
  const double alpha_up = 1e6 * 8 / k4G.upload_bps;
  const double result = 0.2 * 1.5e6;
  const double result_down = result * 8 / k4G.download_bps;
  const double wan_bytes = 1.5e6 + result;
  const double wan_time =
      p.bs_to_cloud_latency_s + wan_bytes * 8 / p.bs_to_cloud_rate_bps;
  EXPECT_NEAR(e.transfer_s,
              std::max(beta_up, alpha_up) + result_down + wan_time, 1e-9);

  const double wan_energy =
      p.bs_to_cloud_power_w * wan_bytes * 8 / p.bs_to_cloud_rate_bps;
  const double expected = kWiFi.tx_power_w * beta_up +
                          k4G.tx_power_w * alpha_up +
                          k4G.rx_power_w * result_down + wan_energy;
  EXPECT_NEAR(e.energy_j, expected, 1e-6);
}

TEST_F(CostModelTest, EnergyOrderingHoldsForTypicalTasks) {
  // The paper's analysis assumes E_ij1 < E_ij2 < E_ij3 (Corollary 1); the
  // default constants must preserve it for data-sized tasks.
  for (double alpha : {0.2e6, 1e6, 3e6}) {
    for (double beta_frac : {0.0, 0.25, 0.5}) {
      const Task t = make_task(0, alpha, beta_frac * alpha, 1);
      const TaskCosts c = CostModel(topo_).evaluate(t);
      EXPECT_LT(c.energy(Placement::kLocal), c.energy(Placement::kEdge))
          << "alpha=" << alpha << " frac=" << beta_frac;
      EXPECT_LT(c.energy(Placement::kEdge), c.energy(Placement::kCloud))
          << "alpha=" << alpha << " frac=" << beta_frac;
    }
  }
}

TEST_F(CostModelTest, SelfOwnedExternalDataCostsNothingToFetch) {
  Task t = make_task(0, 1e6, 0.5e6, 0);  // owner == issuer
  const CostEntry e = model_.evaluate(t, Placement::kLocal);
  EXPECT_DOUBLE_EQ(e.transfer_s, 0.0);
}

TEST_F(CostModelTest, ConstantResultSizeModel) {
  Task t = make_task(0, 1e6, 0.0, 1);
  t.result_kind = ResultSizeKind::kConstant;
  t.result_const_bytes = 1234.0;
  EXPECT_DOUBLE_EQ(t.result_bytes(), 1234.0);
  const CostEntry e = model_.evaluate(t, Placement::kEdge);
  const double alpha_up = 1e6 * 8 / k4G.upload_bps;
  const double result_down = 1234.0 * 8 / k4G.download_bps;
  EXPECT_NEAR(e.transfer_s, alpha_up + result_down, 1e-9);
}

TEST_F(CostModelTest, EvaluateAllMatchesSingle) {
  const Task t = make_task(0, 2e6, 0.7e6, 2);
  const TaskCosts all = model_.evaluate(t);
  for (Placement p : kAllPlacements) {
    const CostEntry single = model_.evaluate(t, p);
    EXPECT_DOUBLE_EQ(all.at(p).energy_j, single.energy_j);
    EXPECT_DOUBLE_EQ(all.at(p).latency_s(), single.latency_s());
  }
}

TEST_F(CostModelTest, ZeroByteTaskIsFree) {
  const Task t = make_task(0, 0.0, 0.0, 1);
  for (Placement p : kAllPlacements) {
    const CostEntry e = model_.evaluate(t, p);
    EXPECT_DOUBLE_EQ(e.compute_s, 0.0);
    EXPECT_DOUBLE_EQ(e.energy_j, 0.0);
  }
}

TEST(PlacementTest, ToString) {
  EXPECT_EQ(to_string(Placement::kLocal), "local");
  EXPECT_EQ(to_string(Placement::kEdge), "edge");
  EXPECT_EQ(to_string(Placement::kCloud), "cloud");
}

}  // namespace
}  // namespace mecsched::mec
