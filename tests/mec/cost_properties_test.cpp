// Property tests on the Sec. II cost model: monotonicity in data volume,
// radio ordering, and cross-cluster premiums — the structural facts the
// paper's analysis leans on beyond the single ordering E1 < E2 < E3.
#include <gtest/gtest.h>

#include "common/units.h"
#include "mec/cost_model.h"
#include "mec/parameters.h"

namespace mecsched::mec {
namespace {

using units::gigahertz;
using units::kilobytes;

Topology make_topo() {
  std::vector<Device> devices = {
      {0, 0, gigahertz(1.5), k4G, 10.0},
      {1, 0, gigahertz(1.5), kWiFi, 10.0},
      {2, 1, gigahertz(1.5), k4G, 10.0},
  };
  std::vector<BaseStation> stations = {{0, gigahertz(4.0), 50.0},
                                       {1, gigahertz(4.0), 50.0}};
  return Topology(std::move(devices), std::move(stations),
                  SystemParameters{});
}

Task task_of(std::size_t user, double alpha_kb, double beta_kb,
             std::size_t owner) {
  Task t;
  t.id = {user, 0};
  t.local_bytes = kilobytes(alpha_kb);
  t.external_bytes = kilobytes(beta_kb);
  t.external_owner = owner;
  t.deadline_s = 1e9;
  return t;
}

class VolumeMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(VolumeMonotonic, EnergyAndLatencyGrowWithLocalData) {
  const Topology topo = make_topo();
  const CostModel model(topo);
  const Placement p = kAllPlacements[static_cast<std::size_t>(GetParam())];
  double prev_e = -1.0, prev_t = -1.0;
  for (double alpha : {200.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    const CostEntry e = model.evaluate(task_of(0, alpha, 300.0, 1), p);
    EXPECT_GT(e.energy_j, prev_e) << "alpha=" << alpha;
    EXPECT_GT(e.latency_s(), prev_t) << "alpha=" << alpha;
    prev_e = e.energy_j;
    prev_t = e.latency_s();
  }
}

TEST_P(VolumeMonotonic, EnergyGrowsWithExternalData) {
  const Topology topo = make_topo();
  const CostModel model(topo);
  const Placement p = kAllPlacements[static_cast<std::size_t>(GetParam())];
  double prev = -1.0;
  for (double beta : {0.0, 100.0, 400.0, 1000.0}) {
    const CostEntry e = model.evaluate(task_of(0, 1000.0, beta, 1), p);
    EXPECT_GT(e.energy_j, prev) << "beta=" << beta;
    prev = e.energy_j;
  }
}

INSTANTIATE_TEST_SUITE_P(Placements, VolumeMonotonic, ::testing::Range(0, 3));

TEST(CostPropertiesTest, WifiIssuerCheaperUplinkThanFourG) {
  // Same α, same compute; the Wi-Fi device's faster uplink makes its edge
  // upload both faster and (despite the higher TX power) cheaper per task
  // of this size: t = X/r and E = P·t, Wi-Fi's r advantage (2.2x up)
  // exceeds its P premium (2.1x), so check time strictly and energy >=.
  const Topology topo = make_topo();
  const CostModel model(topo);
  const CostEntry on_4g = model.evaluate(task_of(0, 2000.0, 0.0, 1),
                                         Placement::kEdge);
  const CostEntry on_wifi = model.evaluate(task_of(1, 2000.0, 0.0, 0),
                                           Placement::kEdge);
  EXPECT_LT(on_wifi.transfer_s, on_4g.transfer_s);
}

TEST(CostPropertiesTest, CrossClusterFetchIsNeverCheaper) {
  const Topology topo = make_topo();
  const CostModel model(topo);
  // owner 2 sits in the other cluster; same radio (4G) as this cluster's
  // device 0, so the only difference is the backhaul hop.
  const Task same = task_of(1, 1000.0, 400.0, 0);
  const Task cross = task_of(1, 1000.0, 400.0, 2);
  for (Placement p : {Placement::kLocal, Placement::kEdge}) {
    const CostEntry e_same = model.evaluate(same, p);
    const CostEntry e_cross = model.evaluate(cross, p);
    EXPECT_GE(e_cross.energy_j, e_same.energy_j) << to_string(p);
    EXPECT_GE(e_cross.latency_s(), e_same.latency_s()) << to_string(p);
  }
  // for the cloud the paper routes the fetch straight over the WAN: equal
  const CostEntry c_same = model.evaluate(same, Placement::kCloud);
  const CostEntry c_cross = model.evaluate(cross, Placement::kCloud);
  EXPECT_NEAR(c_same.energy_j, c_cross.energy_j, 1e-12);
}

TEST(CostPropertiesTest, FasterDeviceCpuCutsLocalTimeButCostsEnergy) {
  // E^(C) = κλX f²: doubling f halves time and quadruples energy.
  std::vector<Device> devices = {
      {0, 0, gigahertz(1.0), k4G, 10.0},
      {1, 0, gigahertz(2.0), k4G, 10.0},
  };
  std::vector<BaseStation> stations = {{0, gigahertz(4.0), 50.0}};
  const Topology topo(devices, stations, SystemParameters{});
  const CostModel model(topo);
  const CostEntry slow = model.evaluate(task_of(0, 1000.0, 0.0, 1),
                                        Placement::kLocal);
  const CostEntry fast = model.evaluate(task_of(1, 1000.0, 0.0, 0),
                                        Placement::kLocal);
  EXPECT_NEAR(fast.compute_s, slow.compute_s / 2.0, 1e-12);
  EXPECT_NEAR(fast.energy_j, slow.energy_j * 4.0, 1e-9);
}

TEST(CostPropertiesTest, ResultRatioOnlyAffectsOffloadedPlacements) {
  const Topology topo = make_topo();
  const CostModel model(topo);
  Task small = task_of(0, 1000.0, 0.0, 1);
  small.result_ratio = 0.05;
  Task big = task_of(0, 1000.0, 0.0, 1);
  big.result_ratio = 0.4;
  EXPECT_DOUBLE_EQ(model.evaluate(small, Placement::kLocal).energy_j,
                   model.evaluate(big, Placement::kLocal).energy_j);
  EXPECT_LT(model.evaluate(small, Placement::kEdge).energy_j,
            model.evaluate(big, Placement::kEdge).energy_j);
  EXPECT_LT(model.evaluate(small, Placement::kCloud).energy_j,
            model.evaluate(big, Placement::kCloud).energy_j);
}

}  // namespace
}  // namespace mecsched::mec
