#include "common/error.h"

#include <gtest/gtest.h>

namespace mecsched {
namespace {

TEST(RequireTest, PassesOnTrue) {
  EXPECT_NO_THROW(MECSCHED_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(RequireTest, ThrowsModelErrorWithContext) {
  try {
    MECSCHED_REQUIRE(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const ModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition failed"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);  // file name
  }
}

TEST(RequireTest, SurvivesReleaseBuilds) {
  // The macro must not compile away under NDEBUG (this whole suite builds
  // RelWithDebInfo, i.e. with NDEBUG set).
  bool threw = false;
  try {
    MECSCHED_REQUIRE(false, "");
  } catch (const ModelError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(ErrorTypesTest, HierarchyIsUsable) {
  // SolverError is a runtime_error, ModelError an invalid_argument; both
  // land in std::exception handlers.
  EXPECT_THROW(throw SolverError("s"), std::runtime_error);
  EXPECT_THROW(throw ModelError("m"), std::invalid_argument);
  try {
    throw SolverError("message");
  } catch (const std::exception& e) {
    EXPECT_STREQ(e.what(), "message");
  }
}

}  // namespace
}  // namespace mecsched
