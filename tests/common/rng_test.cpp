#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/stats.h"

namespace mecsched {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.5, 9.75);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 9.75);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(7);
  Summary s;
  for (int i = 0; i < 20'000; ++i) s.add(rng.uniform(0.0, 1.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversEndpoints) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(4));
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20'000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 50'000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.15);
}

TEST(RngTest, TruncatedNormalRespectsFloor) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.truncated_normal(1.0, 2.0, 0.5), 0.5);
  }
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(19);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (rng.weighted_index(w) == 1) ++ones;
  }
  EXPECT_NEAR(ones / 20'000.0, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexRejectsEmptyAndZero) {
  Rng rng(23);
  EXPECT_THROW(rng.weighted_index({}), ModelError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), ModelError);
}

TEST(RngTest, SampleWithoutReplacementIsCorrectSize) {
  Rng rng(29);
  const auto s = rng.sample_without_replacement(100, 17);
  EXPECT_EQ(s.size(), 17u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 17u);
  for (std::size_t v : s) EXPECT_LT(v, 100u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(RngTest, SampleAllElements) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(10, 10);
  EXPECT_EQ(s.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, SampleRejectsOversizedRequest) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ModelError);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent(99);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(1);
  Rng c1_again = Rng(99).fork(0);
  EXPECT_EQ(c1.uniform_int(0, 1 << 30), c1_again.uniform_int(0, 1 << 30));
  // distinct streams should not track each other
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.uniform_int(0, 1 << 30) == c2.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ModelError);
  EXPECT_THROW(rng.uniform_int(5, 4), ModelError);
}

// Regression for the parallel-sweep contract: substream(key) must depend
// only on (seed, key) — not on how much the parent was drawn from or how
// many other substreams were derived first. A violation here would make
// sweep results depend on worker scheduling.
TEST(RngTest, SubstreamIsIndependentOfOtherDrawsAndDerivations) {
  Rng fresh(123);
  Rng used(123);
  for (int i = 0; i < 37; ++i) (void)used.uniform(0.0, 1.0);
  for (std::uint64_t k = 0; k < 50; ++k) {
    Rng other = used.substream(k);
    (void)other.uniform(0.0, 1.0);
  }
  EXPECT_EQ(fresh.substream_seed(77), used.substream_seed(77));
  Rng a = fresh.substream(77);
  Rng b = used.substream(77);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  }
}

TEST(RngTest, SubstreamsAreDecorrelatedAcrossKeysAndFromFork) {
  const Rng root(9);
  EXPECT_NE(root.substream_seed(1), root.substream_seed(2));
  // Adjacent keys and the equally-keyed fork() child must all be distinct
  // streams.
  Rng s1 = root.substream(1);
  Rng s2 = root.substream(2);
  Rng f1 = root.fork(1);
  int s1_eq_s2 = 0;
  int s1_eq_f1 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = s1.uniform_int(0, 1 << 30);
    if (a == s2.uniform_int(0, 1 << 30)) ++s1_eq_s2;
    if (a == f1.uniform_int(0, 1 << 30)) ++s1_eq_f1;
  }
  EXPECT_LT(s1_eq_s2, 3);
  EXPECT_LT(s1_eq_f1, 3);
}

}  // namespace
}  // namespace mecsched
