#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace mecsched {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "csv_test_out.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"x", "y"});
    w.write_row({"1", "2"});
  }
  EXPECT_EQ(slurp(path_), "x,y\n1,2\n");
}

TEST_F(CsvTest, RejectsWrongWidth) {
  CsvWriter w(path_, {"x", "y"});
  EXPECT_THROW(w.write_row({"1"}), ModelError);
}

TEST_F(CsvTest, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/file.csv", {"a"}), ModelError);
}

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace mecsched
