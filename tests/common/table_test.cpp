#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace mecsched {
namespace {

TEST(TableTest, PrintsHeaderAndRows) {
  Table t({"tasks", "energy"});
  t.add_row({"100", "12.5"});
  t.add_row({"200", "21.0"});
  std::ostringstream os;
  os << t;
  const std::string s = os.str();
  EXPECT_NE(s.find("tasks"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_NE(s.find("21.0"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ColumnsAlignToWidestCell) {
  Table t({"a"});
  t.add_row({"wide-cell-content"});
  std::ostringstream os;
  os << t;
  // every printed line must have equal length (fixed-width layout)
  std::istringstream is(os.str());
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ModelError);
}

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ModelError);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace mecsched
