#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace mecsched {
namespace {

// The empty-series contract: "no data" reads as NaN for every order
// statistic and moment, never a fabricated 0 or ±infinity. Only sum() is 0
// (the additive identity).
TEST(SummaryTest, EmptySummaryIsNaNExceptSum) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.variance()));
  EXPECT_TRUE(std::isnan(s.stddev()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

// One sample: its own mean/min/max, variance exactly 0 (not NaN — a
// single observation has zero spread, an important distinction for the
// obs histogram summaries).
TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook dataset
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Rng rng(5);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-10, 10);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Summary b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, EmptyGivesNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
  EXPECT_TRUE(std::isnan(percentile({}, 0.0)));
  EXPECT_TRUE(std::isnan(percentile({}, 1.0)));
}

TEST(PercentileTest, SingleSampleIsEveryPercentile) {
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile({7.5}, q), 7.5);
  }
}

TEST(PercentileTest, OutOfRangeQuantileClamps) {
  std::vector<double> v = {5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 9.0);
}

TEST(ApproxEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_equal(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 1e-10));
}

}  // namespace
}  // namespace mecsched
