#include "common/deadline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace mecsched {
namespace {

TEST(Deadline, DefaultIsUnlimited) {
  const Deadline d;
  EXPECT_TRUE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_s()));
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
}

TEST(Deadline, ZeroBudgetIsLegalAndAlreadyExpired) {
  const Deadline d = Deadline::after_s(0.0);
  EXPECT_FALSE(d.is_unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining_s(), 0.0);
}

TEST(Deadline, GenerousBudgetIsNotExpired) {
  const Deadline d = Deadline::after_s(3600.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_s(), 3000.0);
  EXPECT_GT(d.remaining_ms(), 3000.0 * 1e3);
}

TEST(Deadline, RejectsNegativeAndNonFiniteBudgets) {
  EXPECT_THROW(Deadline::after_s(-1.0), ModelError);
  EXPECT_THROW(Deadline::after_s(std::nan("")), ModelError);
  EXPECT_THROW(Deadline::after_s(std::numeric_limits<double>::infinity()),
               ModelError);
  EXPECT_THROW(Deadline::after_ms(-5.0), ModelError);
}

TEST(Deadline, ChildNeverOutlivesParent) {
  const Deadline parent = Deadline::after_s(10.0);
  const Deadline half = parent.child(0.5);
  EXPECT_FALSE(half.is_unlimited());
  EXPECT_LE(half.remaining_s(), parent.remaining_s());
  // A full-fraction child is still capped by the parent.
  EXPECT_LE(parent.child(1.0).remaining_s(), parent.remaining_s() + 1e-9);
}

TEST(Deadline, ChildOfUnlimitedIsUnlimited) {
  EXPECT_TRUE(Deadline().child(0.5).is_unlimited());
}

TEST(Deadline, ChildRejectsBadFractions) {
  const Deadline parent = Deadline::after_s(10.0);
  EXPECT_THROW(parent.child(0.0), ModelError);
  EXPECT_THROW(parent.child(-0.5), ModelError);
  EXPECT_THROW(parent.child(1.5), ModelError);
}

TEST(Deadline, EarlierPrefersTheBoundedAndSoonerOne) {
  const Deadline never;
  const Deadline soon = Deadline::after_s(1.0);
  const Deadline later = Deadline::after_s(100.0);
  EXPECT_TRUE(Deadline::earlier(never, never).is_unlimited());
  EXPECT_NEAR(Deadline::earlier(never, soon).remaining_s(), 1.0, 0.5);
  EXPECT_NEAR(Deadline::earlier(soon, never).remaining_s(), 1.0, 0.5);
  EXPECT_NEAR(Deadline::earlier(soon, later).remaining_s(), 1.0, 0.5);
}

TEST(CancellationToken, DefaultNeverExpires) {
  const CancellationToken t;
  EXPECT_TRUE(t.unlimited());
  EXPECT_FALSE(t.expired());
  EXPECT_FALSE(t.cancel_requested());
}

TEST(CancellationToken, ExpiresWithItsDeadline) {
  const CancellationToken t{Deadline::after_s(0.0)};
  EXPECT_FALSE(t.unlimited());
  EXPECT_TRUE(t.expired());
  EXPECT_FALSE(t.cancel_requested());
}

TEST(CancellationSource, FlagIsSharedAcrossCopies) {
  CancellationSource source;
  const CancellationToken a = source.token();
  const CancellationToken b = a;  // copy observes the same flag
  EXPECT_FALSE(a.expired());
  source.request_cancel();
  EXPECT_TRUE(a.cancel_requested());
  EXPECT_TRUE(b.cancel_requested());
  EXPECT_TRUE(a.expired());
  EXPECT_FALSE(a.unlimited());
}

TEST(CancellationToken, WithDeadlineTightensButKeepsTheFlag) {
  CancellationSource source;
  const CancellationToken base = source.token(Deadline::after_s(100.0));
  const CancellationToken tight = base.with_deadline(Deadline::after_s(0.0));
  EXPECT_TRUE(tight.expired());  // sooner deadline wins
  const CancellationToken loose = base.with_deadline(Deadline::after_s(1e6));
  EXPECT_LE(loose.deadline().remaining_s(), 101.0);  // cannot loosen
  source.request_cancel();
  EXPECT_TRUE(loose.cancel_requested());  // flag survived the re-deadline
}

class DefaultBudgetTest : public ::testing::Test {
 protected:
  void TearDown() override { set_default_solve_budget_ms(0.0); }
};

TEST_F(DefaultBudgetTest, SetAndClear) {
  EXPECT_DOUBLE_EQ(default_solve_budget_ms(), 0.0);
  set_default_solve_budget_ms(250.0);
  EXPECT_DOUBLE_EQ(default_solve_budget_ms(), 250.0);
  set_default_solve_budget_ms(0.0);
  EXPECT_DOUBLE_EQ(default_solve_budget_ms(), 0.0);
}

TEST_F(DefaultBudgetTest, RejectsNegativeAndNonFinite) {
  EXPECT_THROW(set_default_solve_budget_ms(-1.0), ModelError);
  EXPECT_THROW(set_default_solve_budget_ms(std::nan("")), ModelError);
}

TEST_F(DefaultBudgetTest, EffectiveTokenAppliesTheDefaultOnlyWhenUnset) {
  // No default installed: the token passes through untouched.
  EXPECT_TRUE(effective_solve_token(CancellationToken{}).unlimited());

  set_default_solve_budget_ms(1e7);
  const CancellationToken budgeted = effective_solve_token({});
  EXPECT_FALSE(budgeted.unlimited());
  EXPECT_FALSE(budgeted.expired());

  // A token that already carries a deadline keeps it (no double budgeting:
  // solvers resolve the token once at entry, and nested solves see a
  // deadline-carrying token).
  const CancellationToken own{Deadline::after_s(0.0)};
  EXPECT_TRUE(effective_solve_token(own).expired());

  // The cancel flag is preserved when the default is applied.
  CancellationSource source;
  source.request_cancel();
  EXPECT_TRUE(effective_solve_token(source.token()).cancel_requested());
}

}  // namespace
}  // namespace mecsched
