#include "common/units.h"

#include <gtest/gtest.h>

namespace mecsched::units {
namespace {

TEST(UnitsTest, DataSizeConversions) {
  EXPECT_DOUBLE_EQ(kilobytes(3000.0), 3.0e6);
  EXPECT_DOUBLE_EQ(megabytes(1.5), 1.5e6);
}

TEST(UnitsTest, RateConversions) {
  EXPECT_DOUBLE_EQ(mbps(13.76), 13.76e6);
  EXPECT_DOUBLE_EQ(gbps(1.0), 1.0e9);
}

TEST(UnitsTest, FrequencyConversions) {
  EXPECT_DOUBLE_EQ(gigahertz(2.4), 2.4e9);
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(milliseconds(250.0), 0.25);
}

TEST(UnitsTest, TransferSecondsUsesBits) {
  // 1 MB over 8 Mbps = 1 second.
  EXPECT_DOUBLE_EQ(transfer_seconds(1e6, 8e6), 1.0);
  // paper example: 3000 kB over 4G uplink 5.85 Mbps ≈ 4.1 s
  EXPECT_NEAR(transfer_seconds(kilobytes(3000), mbps(5.85)), 4.10, 0.01);
}

}  // namespace
}  // namespace mecsched::units
