// Dual-value property tests: strong duality, dual feasibility signs,
// complementary slackness, and simplex/IPM dual agreement on LPs without
// finite upper bounds (where the reported row duals are the whole story).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace mecsched::lp {
namespace {

TEST(DualityTest, KnownLpDuals) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (as min of negation).
  // Known optimal duals of the max problem: (0, 3/2, 1); for our min form
  // the signs flip: y = (0, -3/2, -1).
  Problem p;
  const auto x = p.add_variable(-3.0, 0.0, kInfinity);
  const auto y = p.add_variable(-5.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  ASSERT_EQ(s.duals.size(), 3u);
  EXPECT_NEAR(s.duals[0], 0.0, 1e-8);
  EXPECT_NEAR(s.duals[1], -1.5, 1e-8);
  EXPECT_NEAR(s.duals[2], -1.0, 1e-8);
  // strong duality: c'x = b'y
  const double by = 4.0 * s.duals[0] + 12.0 * s.duals[1] + 18.0 * s.duals[2];
  EXPECT_NEAR(s.objective, by, 1e-8);
}

// Random feasible bounded min-LPs with x >= 0 only (no finite ubs):
// "<=" rows anchored at an interior point, plus a bounding row that keeps
// the objective finite.
Problem random_unbounded_above_lp(mecsched::Rng& rng, std::size_t n,
                                  std::size_t m) {
  Problem p;
  std::vector<double> x0(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.add_variable(rng.uniform(0.5, 4.0), 0.0, kInfinity);  // positive costs
    x0[i] = rng.uniform(0.0, 2.0);
  }
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(0.6)) continue;
      const double c = rng.uniform(0.1, 2.0);
      terms.push_back({i, c});
      lhs += c * x0[i];
    }
    if (terms.empty()) continue;
    // ">=" rows force a nontrivial optimum away from the origin.
    p.add_constraint(std::move(terms), Relation::kGreaterEqual,
                     lhs * rng.uniform(0.3, 0.9));
  }
  return p;
}

class DualProperties : public ::testing::TestWithParam<int> {};

TEST_P(DualProperties, StrongDualityAndComplementarySlackness) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 137 + 41);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 8));
  const Problem p = random_unbounded_above_lp(rng, n, m);

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal()) << "seed " << GetParam();
  ASSERT_EQ(s.duals.size(), p.num_constraints());

  // strong duality: with only x >= 0 bounds, objective == b'y.
  double by = 0.0;
  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    by += p.constraint(r).rhs * s.duals[r];
  }
  EXPECT_NEAR(s.objective, by, 1e-6 * (1.0 + std::fabs(s.objective)))
      << "seed " << GetParam();

  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    const Constraint& c = p.constraint(r);
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * s.x[t.var];
    // dual sign: ">=" rows have y >= 0
    EXPECT_GE(s.duals[r], -1e-8) << "seed " << GetParam() << " row " << r;
    // complementary slackness: slack > 0 => dual == 0
    if (lhs > c.rhs + 1e-6) {
      EXPECT_NEAR(s.duals[r], 0.0, 1e-6)
          << "seed " << GetParam() << " row " << r;
    }
  }

  // dual feasibility: reduced costs c_j - y'A_j >= 0 for all variables.
  for (std::size_t v = 0; v < p.num_variables(); ++v) {
    double reduced = p.cost(v);
    for (std::size_t r = 0; r < p.num_constraints(); ++r) {
      for (const Term& t : p.constraint(r).terms) {
        if (t.var == v) reduced -= s.duals[r] * t.coeff;
      }
    }
    EXPECT_GE(reduced, -1e-6) << "seed " << GetParam() << " var " << v;
    // ... and complementary slackness on variables: x_v > 0 => reduced 0.
    if (s.x[v] > 1e-6) {
      EXPECT_NEAR(reduced, 0.0, 1e-6) << "seed " << GetParam() << " var " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, DualProperties, ::testing::Range(0, 30));

class DualAgreement : public ::testing::TestWithParam<int> {};

TEST_P(DualAgreement, SimplexAndIpmDualObjectivesMatch) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 3);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 10));
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 6));
  const Problem p = random_unbounded_above_lp(rng, n, m);

  const Solution sx = SimplexSolver().solve(p);
  const Solution ip = InteriorPointSolver().solve(p);
  ASSERT_TRUE(sx.optimal());
  ASSERT_TRUE(ip.optimal());
  // Duals may differ at degenerate optima, but the dual objective b'y is
  // unique-valued at optimality.
  double by_s = 0.0, by_i = 0.0;
  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    by_s += p.constraint(r).rhs * sx.duals[r];
    by_i += p.constraint(r).rhs * ip.duals[r];
  }
  EXPECT_NEAR(by_s, by_i, 1e-4 * (1.0 + std::fabs(by_s)))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, DualAgreement, ::testing::Range(0, 20));

}  // namespace
}  // namespace mecsched::lp
