// Unit tests for the CSR matrix: assembly, algebra against the dense
// reference, the pattern fingerprint and the kernel-dispatch policy.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "lp/matrix.h"
#include "lp/sparse_matrix.h"

namespace mecsched::lp {
namespace {

TEST(SparseMatrixTest, FromTripletsSumsDuplicatesAndDropsZeros) {
  // (0,1) appears twice and sums; (1,0) cancels to exact zero and is
  // dropped from the structure.
  const SparseMatrix a = SparseMatrix::from_triplets(
      2, 3,
      {{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 4.0}, {1, 0, -4.0}, {1, 2, -1.0}});
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.0);  // structurally absent
  EXPECT_DOUBLE_EQ(a(1, 2), -1.0);
}

TEST(SparseMatrixTest, DenseRoundtrip) {
  Matrix d(3, 4);
  d(0, 0) = 1.5;
  d(1, 3) = -2.0;
  d(2, 1) = 0.25;
  const SparseMatrix a = SparseMatrix::from_dense(d);
  EXPECT_EQ(a.nnz(), 3u);
  const Matrix back = a.to_dense();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(back(r, c), d(r, c));
    }
  }
}

TEST(SparseMatrixTest, DensityCountsStructuralNonzeros) {
  const SparseMatrix a =
      SparseMatrix::from_triplets(4, 5, {{0, 0, 1.0}, {3, 4, 2.0}});
  EXPECT_DOUBLE_EQ(a.density(), 2.0 / 20.0);
  const SparseMatrix empty = SparseMatrix::from_triplets(0, 0, {});
  EXPECT_DOUBLE_EQ(empty.density(), 0.0);
}

TEST(SparseMatrixTest, MultiplyMatchesDenseReference) {
  mecsched::Rng rng(1234);
  Matrix d(17, 23);
  for (std::size_t r = 0; r < d.rows(); ++r) {
    for (std::size_t c = 0; c < d.cols(); ++c) {
      if (rng.bernoulli(0.2)) d(r, c) = rng.uniform(-3.0, 3.0);
    }
  }
  const SparseMatrix a = SparseMatrix::from_dense(d);

  std::vector<double> x(d.cols());
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> yr(d.rows());
  for (double& v : yr) v = rng.uniform(-1.0, 1.0);

  const std::vector<double> ax = a.multiply(x);
  const std::vector<double> dx = d.multiply(x);
  ASSERT_EQ(ax.size(), dx.size());
  for (std::size_t i = 0; i < ax.size(); ++i) EXPECT_NEAR(ax[i], dx[i], 1e-12);

  const std::vector<double> aty = a.multiply_transpose(yr);
  const std::vector<double> dty = d.transposed().multiply(yr);
  ASSERT_EQ(aty.size(), dty.size());
  for (std::size_t i = 0; i < aty.size(); ++i) {
    EXPECT_NEAR(aty[i], dty[i], 1e-12);
  }
}

TEST(SparseMatrixTest, TransposedIsExact) {
  const SparseMatrix a = SparseMatrix::from_triplets(
      2, 3, {{0, 2, 7.0}, {1, 0, -1.0}, {1, 2, 2.5}});
  const SparseMatrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_EQ(at.nnz(), a.nnz());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(at(c, r), a(r, c));
    }
  }
}

TEST(SparseMatrixTest, FingerprintTracksPatternNotValues) {
  const SparseMatrix a =
      SparseMatrix::from_triplets(3, 3, {{0, 1, 1.0}, {2, 2, 2.0}});
  const SparseMatrix same_pattern =
      SparseMatrix::from_triplets(3, 3, {{0, 1, -9.0}, {2, 2, 0.5}});
  const SparseMatrix other_pattern =
      SparseMatrix::from_triplets(3, 3, {{0, 1, 1.0}, {2, 1, 2.0}});
  EXPECT_EQ(a.pattern_fingerprint(), same_pattern.pattern_fingerprint());
  EXPECT_NE(a.pattern_fingerprint(), other_pattern.pattern_fingerprint());
  // Shape participates too: same entries, one extra empty row.
  const SparseMatrix taller =
      SparseMatrix::from_triplets(4, 3, {{0, 1, 1.0}, {2, 2, 2.0}});
  EXPECT_NE(a.pattern_fingerprint(), taller.pattern_fingerprint());
}

TEST(SparseMatrixTest, DispatchPolicy) {
  // Force modes win unconditionally.
  EXPECT_FALSE(use_sparse_kernels(1000, 1000, 10, SparseMode::kForceDense));
  EXPECT_TRUE(use_sparse_kernels(2, 2, 4, SparseMode::kForceSparse));
  // Small systems stay dense regardless of density.
  EXPECT_FALSE(use_sparse_kernels(kSparseMinRows - 1, 1000, 10,
                                  SparseMode::kAuto));
  // Large sparse systems go sparse; large dense ones do not.
  const std::size_t m = kSparseMinRows;
  const std::size_t n = 100;
  const auto budget = static_cast<std::size_t>(
      kSparseDensityThreshold * static_cast<double>(m * n));
  EXPECT_TRUE(use_sparse_kernels(m, n, budget, SparseMode::kAuto));
  EXPECT_FALSE(use_sparse_kernels(m, n, budget + 1, SparseMode::kAuto));
  // Degenerate shapes never pick the sparse path under kAuto.
  EXPECT_FALSE(use_sparse_kernels(m, 0, 0, SparseMode::kAuto));
}

}  // namespace
}  // namespace mecsched::lp
