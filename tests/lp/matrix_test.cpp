#include "lp/matrix.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mecsched::lp {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(MatrixTest, IdentityHasUnitDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposeRoundTrips) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 5;
  m(1, 1) = -2;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(1, 1), -2.0);
  const Matrix tt = t.transposed();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt(r, c), m(r, c));
  }
}

TEST(MatrixTest, MultiplyVector) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const auto y = m.multiply(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, MultiplyTransposeVector) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const auto y = m.multiply_transpose({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(MatrixTest, MultiplyMatrix) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]]
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = v++;
  const Matrix ab = a.multiply(b);
  EXPECT_DOUBLE_EQ(ab(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 154.0);
}

TEST(MatrixTest, SizeMismatchesThrow) {
  Matrix m(2, 3);
  EXPECT_THROW(m.multiply(std::vector<double>{1.0}), ModelError);
  EXPECT_THROW(m.multiply_transpose(std::vector<double>{1.0, 2.0, 3.0}),
               ModelError);
  EXPECT_THROW(m.multiply(Matrix(2, 2)), ModelError);
}

TEST(VectorOpsTest, DotNormsAxpy) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 9.0);
  EXPECT_DOUBLE_EQ(a[1], -8.0);
  EXPECT_DOUBLE_EQ(a[2], 15.0);
}

TEST(MatrixTest, MaxAbs) {
  Matrix m(2, 2);
  m(0, 1) = -7.5;
  m(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(m.max_abs(), 7.5);
}

}  // namespace
}  // namespace mecsched::lp
