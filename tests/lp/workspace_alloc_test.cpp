// Allocation-count regression test for the arena-backed solve state: a
// warm-started re-solve on a warmed-up thread must perform ZERO heap
// allocations inside the simplex pivot loop. This binary overrides the
// global operator new/delete to count allocations made while the solver's
// PivotLoopScope is active (lp/workspace.h) — which is why it is its own
// test binary and not part of lp_test.
//
// The contract being locked in: after the first solves of a shape have
// grown the workspace arena and the BasisLu pools to their high-water
// marks, re-entries (PR 3 cached sweep cells, PR 8 serve shard solves)
// run the entire pivot loop — pricing, FTRAN/BTRAN, ratio test, eta
// updates and refactorizations — out of reused capacity.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/workspace.h"

namespace {
// Plain (not atomic) counters: the test is single-threaded and the
// override must itself stay allocation-free.
std::uint64_t g_pivot_loop_allocs = 0;
std::uint64_t g_pivot_loop_alloc_bytes = 0;

void* counted_alloc(std::size_t size) {
  if (mecsched::lp::pivot_loop_active()) {
    ++g_pivot_loop_allocs;
    g_pivot_loop_alloc_bytes += size;
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mecsched::lp {
namespace {

// The HTA cluster shape the sweep re-solves thousands of times.
Problem hta_shaped_lp(mecsched::Rng& rng, std::size_t tasks,
                      std::size_t capacity_rows) {
  Problem p;
  std::vector<std::array<std::size_t, 3>> vars(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t l = 0; l < 3; ++l) {
      vars[t][l] = p.add_variable(rng.uniform(0.1, 10.0), 0.0, 1.0);
    }
    p.add_constraint({{vars[t][0], 1.0}, {vars[t][1], 1.0}, {vars[t][2], 1.0}},
                     Relation::kEqual, 1.0);
  }
  for (std::size_t c = 0; c < capacity_rows; ++c) {
    std::vector<Term> cap;
    for (std::size_t t = c; t < tasks; t += capacity_rows) {
      cap.push_back({vars[t][c % 3], rng.uniform(0.5, 2.0)});
    }
    if (cap.empty()) continue;
    p.add_constraint(std::move(cap), Relation::kLessEqual,
                     static_cast<double>(tasks));
  }
  return p;
}

TEST(WorkspaceAllocTest, ProbeIsInertOutsidePivotLoop) {
  EXPECT_FALSE(pivot_loop_active());
  const std::uint64_t before = g_pivot_loop_allocs;
  delete[] new double[64];  // not inside a pivot loop: not counted
  EXPECT_EQ(g_pivot_loop_allocs, before);
  {
    internal::PivotLoopScope scope;
    EXPECT_TRUE(pivot_loop_active());
    delete[] new double[64];  // inside: counted
  }
  EXPECT_FALSE(pivot_loop_active());
  EXPECT_EQ(g_pivot_loop_allocs, before + 1);
}

TEST(WorkspaceAllocTest, WarmResolvePivotLoopIsAllocationFree) {
  mecsched::Rng rng(4242);
  const Problem p = hta_shaped_lp(rng, 40, 4);
  const SimplexSolver solver;  // defaults: kEtaLu, Dantzig, kAuto pricing

  // Warm-start hint: placement 0 for every task.
  std::vector<double> guess(p.num_variables(), 0.0);
  for (std::size_t i = 0; i < guess.size(); i += 3) guess[i] = 1.0;

  // Cold solve, then a warm re-solve: these grow the thread's workspace
  // arena and the BasisLu pools to the shape's high-water marks.
  const Solution cold = solver.solve(p);
  ASSERT_TRUE(cold.optimal());
  const Solution prime = solver.solve(p, guess);
  ASSERT_TRUE(prime.optimal());

  // The measured warm re-solve: identical shape, warmed thread. Nothing in
  // the pivot loop may touch the heap.
  g_pivot_loop_allocs = 0;
  g_pivot_loop_alloc_bytes = 0;
  const Solution warm = solver.solve(p, guess);
  ASSERT_TRUE(warm.optimal());
  EXPECT_DOUBLE_EQ(warm.objective, prime.objective);
  EXPECT_EQ(g_pivot_loop_allocs, 0u)
      << "warm re-solve allocated " << g_pivot_loop_alloc_bytes
      << " bytes inside the pivot loop";
}

TEST(WorkspaceAllocTest, SteadyStateResolvesStayAllocationFree) {
  // A burst of re-solves across several related shapes (the sweep pattern:
  // neighbouring cells differ slightly). After one priming pass per shape,
  // every further pivot loop must be heap-free.
  std::vector<Problem> cells;
  for (int s = 0; s < 4; ++s) {
    mecsched::Rng rng(900 + static_cast<std::uint64_t>(s));
    cells.push_back(hta_shaped_lp(rng, 24 + 4 * static_cast<std::size_t>(s), 3));
  }
  const SimplexSolver solver;
  for (const Problem& p : cells) ASSERT_TRUE(solver.solve(p).optimal());

  g_pivot_loop_allocs = 0;
  for (int round = 0; round < 3; ++round) {
    for (const Problem& p : cells) ASSERT_TRUE(solver.solve(p).optimal());
  }
  EXPECT_EQ(g_pivot_loop_allocs, 0u);
}

}  // namespace
}  // namespace mecsched::lp
