#include "lp/interior_point.h"

#include <gtest/gtest.h>

#include "lp/problem.h"

namespace mecsched::lp {
namespace {

TEST(InteriorPointTest, EmptyProblemIsOptimal) {
  EXPECT_TRUE(InteriorPointSolver().solve(Problem{}).optimal());
}

TEST(InteriorPointTest, ClassicTwoVariableLP) {
  Problem p;
  const auto x = p.add_variable(-3.0, 0.0, kInfinity);
  const auto y = p.add_variable(-5.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 2.0, 1e-5);
  EXPECT_NEAR(s.x[1], 6.0, 1e-5);
  EXPECT_NEAR(s.objective, -36.0, 1e-5);
}

TEST(InteriorPointTest, EqualityConstraints) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, kInfinity);
  const auto y = p.add_variable(2.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0);
  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-5);
}

TEST(InteriorPointTest, BoxBoundsRespected) {
  Problem p;
  std::vector<std::size_t> v;
  for (double c : {-1.0, -2.0, -3.0}) v.push_back(p.add_variable(c, 0.0, 1.0));
  p.add_constraint({{v[0], 1.0}, {v[1], 1.0}, {v[2], 1.0}},
                   Relation::kLessEqual, 2.0);
  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -5.0, 1e-5);
  EXPECT_LE(p.max_violation(s.x), 1e-5);
}

TEST(InteriorPointTest, ShiftedLowerBounds) {
  Problem p;
  const auto x = p.add_variable(1.0, 2.0, 10.0);
  const auto y = p.add_variable(1.0, 3.0, 10.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 7.0);
  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 7.0, 1e-5);
}

TEST(InteriorPointTest, DegenerateOptimumStillConverges) {
  // Multiple optima: min x + y s.t. x + y >= 1, x,y in [0,1].
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, 1.0);
  const auto y = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 1.0);
  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 1.0, 1e-5);
}

TEST(InteriorPointTest, ReportsNonConvergenceOnInfeasible) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  const Solution s = InteriorPointSolver().solve(p);
  // IPMs detect infeasibility heuristically; either verdict is acceptable
  // as long as the solver does not claim optimality.
  EXPECT_FALSE(s.optimal());
}

}  // namespace
}  // namespace mecsched::lp
