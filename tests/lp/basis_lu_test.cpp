// Unit tests for the sparse LU + eta-file basis kernel (lp/basis_lu.h):
// factorization and triangular solves against hand-computed inverses,
// product-form eta updates against freshly factorized replacements, the
// refactorization triggers (budget, fill, accuracy) and the chaos poison
// hook. The solver-level contract (same optimum as the dense-inverse
// kernel) lives in basis_kernel_diff_test.cpp.
#include "lp/basis_lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mecsched::lp {
namespace {

// CSC builder for small dense test matrices (column-major input, row-major
// ascending rows per column as the kernel requires).
struct Csc {
  std::vector<std::size_t> ptr{0};
  std::vector<std::size_t> rows;
  std::vector<double> vals;

  // `dense` is column-major: dense[c][r].
  explicit Csc(const std::vector<std::vector<double>>& dense) {
    for (const auto& col : dense) {
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (col[r] == 0.0) continue;
        rows.push_back(r);
        vals.push_back(col[r]);
      }
      ptr.push_back(rows.size());
    }
  }
};

// y = M x for the column-major dense matrix.
std::vector<double> mat_vec(const std::vector<std::vector<double>>& m,
                          const std::vector<double>& x) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t c = 0; c < m.size(); ++c) {
    for (std::size_t r = 0; r < m[c].size(); ++r) y[r] += m[c][r] * x[c];
  }
  return y;
}

// y = Mᵀ x.
std::vector<double> mat_t_vec(const std::vector<std::vector<double>>& m,
                            const std::vector<double>& x) {
  std::vector<double> y(m.size(), 0.0);
  for (std::size_t c = 0; c < m.size(); ++c) {
    for (std::size_t r = 0; r < m[c].size(); ++r) y[c] += m[c][r] * x[r];
  }
  return y;
}

std::vector<std::vector<double>> random_well_conditioned(mecsched::Rng& rng,
                                                         std::size_t n,
                                                         double density) {
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (std::size_t c = 0; c < n; ++c) {
    m[c][c] = rng.uniform(1.0, 3.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == c || !rng.bernoulli(density)) continue;
      m[c][r] = rng.uniform(-0.4, 0.4);  // diagonally dominant-ish
    }
  }
  return m;
}

TEST(BasisLuTest, FtranSolvesIdentity) {
  const std::vector<std::vector<double>> eye = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const Csc csc(eye);
  BasisLu lu;
  lu.factorize(3, csc.ptr.data(), csc.rows.data(), csc.vals.data());
  std::vector<double> w = {3.0, -1.0, 2.5};
  lu.ftran(w.data());
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], -1.0);
  EXPECT_DOUBLE_EQ(w[2], 2.5);
}

TEST(BasisLuTest, FtranAndBtranInvertKnownMatrix) {
  // B = [[2,1],[0,3]] column-major: col0=(2,0), col1=(1,3).
  const std::vector<std::vector<double>> b = {{2, 0}, {1, 3}};
  const Csc csc(b);
  BasisLu lu;
  lu.factorize(2, csc.ptr.data(), csc.rows.data(), csc.vals.data());

  // FTRAN: solve B w = (5, 6) => w = ((5 - 2)/2, 2) = (1.5, 2).
  std::vector<double> w = {5.0, 6.0};
  lu.ftran(w.data());
  EXPECT_NEAR(w[0], 1.5, 1e-12);
  EXPECT_NEAR(w[1], 2.0, 1e-12);

  // BTRAN: solve Bᵀ y = (4, 7) => y = (2, (7-2)/3).
  std::vector<double> y = {4.0, 7.0};
  lu.btran(y.data());
  EXPECT_NEAR(y[0], 2.0, 1e-12);
  EXPECT_NEAR(y[1], 5.0 / 3.0, 1e-12);
}

TEST(BasisLuTest, RandomMatricesRoundTrip) {
  mecsched::Rng rng(91);
  for (int iter = 0; iter < 40; ++iter) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 24));
    const auto dense = random_well_conditioned(rng, n, 0.3);
    const Csc csc(dense);
    BasisLu lu;
    lu.factorize(n, csc.ptr.data(), csc.rows.data(), csc.vals.data());

    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);

    // FTRAN(B x) == x.
    std::vector<double> w = mat_vec(dense, x);
    lu.ftran(w.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(w[i], x[i], 1e-9) << "iter " << iter << " ftran " << i;
    }
    // BTRAN(Bᵀ x) == x.
    std::vector<double> y = mat_t_vec(dense, x);
    lu.btran(y.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], x[i], 1e-9) << "iter " << iter << " btran " << i;
    }
  }
}

TEST(BasisLuTest, EtaUpdateMatchesFreshFactorization) {
  // Replace one basis column, push the eta, and check both solves against
  // a from-scratch factorization of the replaced basis.
  mecsched::Rng rng(7);
  for (int iter = 0; iter < 25; ++iter) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 16));
    auto dense = random_well_conditioned(rng, n, 0.35);
    const Csc csc(dense);
    BasisLu lu;
    lu.factorize(n, csc.ptr.data(), csc.rows.data(), csc.vals.data());

    // New column a with a safe pivot in the replaced slot.
    const auto slot = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(n) - 1));
    std::vector<double> a(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      if (rng.bernoulli(0.4)) a[r] = rng.uniform(-2.0, 2.0);
    }
    a[slot] += 3.0;  // keep the update pivot well away from zero

    // w = B⁻¹ a is the eta column.
    std::vector<double> w = a;
    lu.ftran(w.data());
    ASSERT_TRUE(lu.push_eta(w.data(), slot, n)) << "iter " << iter;
    EXPECT_EQ(lu.eta_count(), 1u);

    dense[slot] = a;  // the updated basis
    const Csc updated(dense);
    BasisLu fresh;
    fresh.factorize(n, updated.ptr.data(), updated.rows.data(),
                    updated.vals.data());

    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);

    std::vector<double> via_eta = x;
    std::vector<double> via_fresh = x;
    lu.ftran(via_eta.data());
    fresh.ftran(via_fresh.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(via_eta[i], via_fresh[i], 1e-8) << "iter " << iter;
    }

    via_eta = x;
    via_fresh = x;
    lu.btran(via_eta.data());
    fresh.btran(via_fresh.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(via_eta[i], via_fresh[i], 1e-8) << "iter " << iter;
    }
  }
}

TEST(BasisLuTest, SingularBasisThrows) {
  // Two identical columns.
  const std::vector<std::vector<double>> b = {{1, 2}, {1, 2}};
  const Csc csc(b);
  BasisLu lu;
  EXPECT_THROW(lu.factorize(2, csc.ptr.data(), csc.rows.data(),
                            csc.vals.data()),
               SolverError);
}

TEST(BasisLuTest, ZeroMatrixThrows) {
  const std::vector<std::size_t> ptr = {0, 0};
  BasisLu lu;
  EXPECT_THROW(lu.factorize(1, ptr.data(), nullptr, nullptr), SolverError);
}

TEST(BasisLuTest, EtaBudgetTriggersRefactor) {
  const std::vector<std::vector<double>> eye = {{1, 0}, {0, 1}};
  const Csc csc(eye);
  BasisLu lu;
  lu.limits().max_etas = 2;
  lu.factorize(2, csc.ptr.data(), csc.rows.data(), csc.vals.data());
  EXPECT_FALSE(lu.needs_refactor());

  std::vector<double> w = {1.0, 0.5};
  ASSERT_TRUE(lu.push_eta(w.data(), 0, 2));
  EXPECT_FALSE(lu.needs_refactor());
  ASSERT_TRUE(lu.push_eta(w.data(), 1, 2));
  EXPECT_TRUE(lu.needs_refactor());  // budget hit

  // Refactorization clears the eta file and the trigger.
  lu.factorize(2, csc.ptr.data(), csc.rows.data(), csc.vals.data());
  EXPECT_EQ(lu.eta_count(), 0u);
  EXPECT_FALSE(lu.needs_refactor());
}

TEST(BasisLuTest, TinyUpdatePivotIsRejected) {
  const std::vector<std::vector<double>> eye = {{1, 0}, {0, 1}};
  const Csc csc(eye);
  BasisLu lu;
  lu.factorize(2, csc.ptr.data(), csc.rows.data(), csc.vals.data());

  // |w_r| is 1e-12 of ‖w‖_∞ — far below the 1e-8 relative floor.
  std::vector<double> w = {1e-12, 1.0};
  EXPECT_FALSE(lu.push_eta(w.data(), 0, 2));
  EXPECT_EQ(lu.eta_count(), 0u);  // rejected etas leave the file unchanged

  std::vector<double> nan_w = {std::nan(""), 1.0};
  EXPECT_FALSE(lu.push_eta(nan_w.data(), 0, 2));
  EXPECT_EQ(lu.eta_count(), 0u);
}

TEST(BasisLuTest, PoisonMakesSolvesNonFinite) {
  const std::vector<std::vector<double>> b = {{2, 0}, {1, 3}};
  const Csc csc(b);
  BasisLu lu;
  lu.factorize(2, csc.ptr.data(), csc.rows.data(), csc.vals.data());
  lu.poison();

  std::vector<double> w = {1.0, 1.0};
  lu.ftran(w.data());
  EXPECT_FALSE(std::isfinite(w[0]) && std::isfinite(w[1]));

  std::vector<double> y = {1.0, 1.0};
  lu.btran(y.data());
  EXPECT_FALSE(std::isfinite(y[0]) && std::isfinite(y[1]));
}

}  // namespace
}  // namespace mecsched::lp
