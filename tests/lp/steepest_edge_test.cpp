// Steepest-edge pricing must reach the same optimum as Dantzig on every
// LP, and — since the reference-framework weights track 1 + ‖B⁻¹A_j‖²
// exactly rather than Devex's approximation — it should stay within a
// modest pivot-count factor of Dantzig on degenerate instances (it
// usually needs fewer pivots).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace mecsched::lp {
namespace {

SimplexOptions steepest_options() {
  SimplexOptions o;
  o.pricing = PricingRule::kSteepestEdge;
  return o;
}

TEST(SteepestEdgeTest, ClassicLpSameAnswer) {
  Problem p;
  const auto x = p.add_variable(-3.0, 0.0, kInfinity);
  const auto y = p.add_variable(-5.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const Solution s = SimplexSolver(steepest_options()).solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(SteepestEdgeTest, BealeCyclingExampleTerminates) {
  Problem p;
  const auto x = p.add_variable(-0.75, 0.0, kInfinity);
  const auto y = p.add_variable(150.0, 0.0, kInfinity);
  const auto z = p.add_variable(-0.02, 0.0, kInfinity);
  const auto w = p.add_variable(6.0, 0.0, kInfinity);
  p.add_constraint({{x, 0.25}, {y, -60.0}, {z, -0.04}, {w, 9.0}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint({{x, 0.5}, {y, -90.0}, {z, -0.02}, {w, 3.0}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint({{z, 1.0}}, Relation::kLessEqual, 1.0);
  const Solution s = SimplexSolver(steepest_options()).solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
}

TEST(SteepestEdgeTest, WorksOnBothBasisKernels) {
  Problem p;
  const auto x = p.add_variable(-2.0, 0.0, 4.0);
  const auto y = p.add_variable(-3.0, 0.0, 4.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 8.0);
  for (const BasisKernel kernel :
       {BasisKernel::kEtaLu, BasisKernel::kDenseInverse}) {
    SimplexOptions o = steepest_options();
    o.basis = kernel;
    const Solution s = SimplexSolver(o).solve(p);
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, -14.0, 1e-8);
  }
}

class SteepestEdgeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SteepestEdgeEquivalence, MatchesDantzigOnRandomLps) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 7);
  const auto n = static_cast<std::size_t>(rng.uniform_int(3, 20));
  const auto m = static_cast<std::size_t>(rng.uniform_int(2, 14));
  Problem p;
  std::vector<double> x0(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ub = rng.uniform(0.5, 3.0);
    p.add_variable(rng.uniform(-5.0, 5.0), 0.0, ub);
    x0[i] = rng.uniform(0.0, ub);
  }
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(0.6)) continue;
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({i, c});
      lhs += c * x0[i];
    }
    if (terms.empty()) continue;
    p.add_constraint(std::move(terms), Relation::kLessEqual,
                     lhs + rng.uniform(0.05, 1.0));
  }

  const Solution dantzig = SimplexSolver().solve(p);
  const Solution steepest = SimplexSolver(steepest_options()).solve(p);
  ASSERT_TRUE(dantzig.optimal()) << "seed " << GetParam();
  ASSERT_TRUE(steepest.optimal()) << "seed " << GetParam();
  EXPECT_NEAR(dantzig.objective, steepest.objective,
              1e-6 * (1.0 + std::abs(dantzig.objective)))
      << "seed " << GetParam();
  EXPECT_LE(p.max_violation(steepest.x), 1e-6);
  // the exact weights should not blow up the pivot count
  EXPECT_LE(steepest.iterations, dantzig.iterations * 3 + 20)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, SteepestEdgeEquivalence,
                         ::testing::Range(0, 30));

TEST(SteepestEdgeTest, InfeasibleAndUnboundedDetectionUnaffected) {
  Problem inf;
  const auto x = inf.add_variable(1.0, 0.0, 1.0);
  inf.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(SimplexSolver(steepest_options()).solve(inf).status,
            SolveStatus::kInfeasible);

  Problem unb;
  const auto z = unb.add_variable(-1.0, 0.0, kInfinity);
  unb.add_constraint({{z, -1.0}}, Relation::kLessEqual, 0.0);
  EXPECT_EQ(SimplexSolver(steepest_options()).solve(unb).status,
            SolveStatus::kUnbounded);
}

}  // namespace
}  // namespace mecsched::lp
