#include "lp/presolve.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/simplex.h"

namespace mecsched::lp {
namespace {

TEST(PresolveTest, FixedVariablesSubstitutedOut) {
  Problem p;
  const auto x = p.add_variable(2.0, 3.0, 3.0);  // pinned at 3
  const auto y = p.add_variable(1.0, 0.0, 10.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 5.0);

  const Presolved pre = presolve(p);
  ASSERT_FALSE(pre.infeasible());
  EXPECT_EQ(pre.fixed_variables(), 1u);
  EXPECT_EQ(pre.reduced().num_variables(), 1u);

  const Solution reduced = SimplexSolver().solve(pre.reduced());
  const Solution full = pre.restore(reduced);
  ASSERT_TRUE(full.optimal());
  EXPECT_NEAR(full.x[0], 3.0, 1e-12);
  EXPECT_NEAR(full.x[1], 2.0, 1e-8);     // y >= 5 - 3
  EXPECT_NEAR(full.objective, 8.0, 1e-8);
}

TEST(PresolveTest, SingletonRowsBecomeBounds) {
  Problem p;
  const auto x = p.add_variable(-1.0, 0.0, kInfinity);
  p.add_constraint({{x, 2.0}}, Relation::kLessEqual, 6.0);  // x <= 3
  const Presolved pre = presolve(p);
  EXPECT_EQ(pre.dropped_constraints(), 1u);
  EXPECT_EQ(pre.tightened_bounds(), 1u);
  EXPECT_EQ(pre.reduced().num_constraints(), 0u);
  EXPECT_DOUBLE_EQ(pre.reduced().upper(0), 3.0);
}

TEST(PresolveTest, NegativeCoefficientSingletonFlipsDirection) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, 100.0);
  p.add_constraint({{x, -1.0}}, Relation::kLessEqual, -5.0);  // x >= 5
  const Presolved pre = presolve(p);
  EXPECT_DOUBLE_EQ(pre.reduced().lower(0), 5.0);
}

TEST(PresolveTest, SingletonBoundCanFixAndDetectInfeasibility) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);  // x >= 2 > ub
  const Presolved pre = presolve(p);
  EXPECT_TRUE(pre.infeasible());
}

TEST(PresolveTest, EmptyRowHandling) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({}, Relation::kLessEqual, 1.0);  // vacuous
  const Presolved ok = presolve(p);
  EXPECT_FALSE(ok.infeasible());
  EXPECT_EQ(ok.dropped_constraints(), 1u);

  Problem q;
  q.add_variable(1.0, 0.0, 1.0);
  q.add_constraint({}, Relation::kGreaterEqual, 1.0);  // 0 >= 1
  EXPECT_TRUE(presolve(q).infeasible());
}

TEST(PresolveTest, RowReferencingOnlyFixedVariables) {
  Problem p;
  const auto x = p.add_variable(1.0, 2.0, 2.0);
  p.add_variable(1.0, 0.0, 5.0);
  p.add_constraint({{x, 1.0}}, Relation::kEqual, 2.0);  // satisfied by fix
  const Presolved ok = presolve(p);
  EXPECT_FALSE(ok.infeasible());

  Problem q;
  const auto z = q.add_variable(1.0, 2.0, 2.0);
  q.add_constraint({{z, 1.0}}, Relation::kEqual, 3.0);  // 2 != 3
  EXPECT_TRUE(presolve(q).infeasible());
}

class PresolveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalence, ReducedAndOriginalAgreeOnRandomLps) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 61 + 29);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 15));
  Problem p;
  std::vector<double> x0(n);
  for (std::size_t i = 0; i < n; ++i) {
    // A third of the variables are pinned; the rest are boxed.
    if (rng.bernoulli(0.33)) {
      const double v = rng.uniform(0.0, 2.0);
      p.add_variable(rng.uniform(-3.0, 3.0), v, v);
      x0[i] = v;
    } else {
      const double ub = rng.uniform(0.5, 3.0);
      p.add_variable(rng.uniform(-3.0, 3.0), 0.0, ub);
      x0[i] = rng.uniform(0.0, ub);
    }
  }
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 10));
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(0.5)) continue;
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({i, c});
      lhs += c * x0[i];
    }
    if (terms.empty()) continue;
    p.add_constraint(std::move(terms), Relation::kLessEqual,
                     lhs + rng.uniform(0.1, 1.5));
  }

  const SimplexSolver solver;
  const Solution direct = solver.solve(p);
  const Presolved pre = presolve(p);
  ASSERT_FALSE(pre.infeasible());
  const Solution restored = pre.restore(solver.solve(pre.reduced()));

  ASSERT_TRUE(direct.optimal());
  ASSERT_TRUE(restored.optimal());
  EXPECT_NEAR(direct.objective, restored.objective,
              1e-6 * (1.0 + std::abs(direct.objective)))
      << "seed " << GetParam();
  EXPECT_LE(p.max_violation(restored.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Random, PresolveEquivalence, ::testing::Range(0, 30));

TEST(PresolveTest, RestorePropagatesNonOptimalStatus) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  const Presolved pre = presolve(p);
  Solution bad;
  bad.status = SolveStatus::kIterationLimit;
  EXPECT_EQ(pre.restore(bad).status, SolveStatus::kIterationLimit);
}

}  // namespace
}  // namespace mecsched::lp
