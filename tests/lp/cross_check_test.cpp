// Property tests: the simplex and interior-point solvers must agree on the
// optimal objective of random feasible LPs, and every reported optimum must
// be primal-feasible. Random instances are built to be feasible by
// construction (constraints are anchored on a known interior point).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.h"
#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace mecsched::lp {
namespace {

// Generates a random LP with n variables in [0, ub] and m "<=" constraints
// that are all satisfied with slack by a random interior point x0, ensuring
// feasibility and (because variables are boxed) boundedness.
Problem random_boxed_lp(mecsched::Rng& rng, std::size_t n, std::size_t m) {
  Problem p;
  std::vector<double> x0(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ub = rng.uniform(0.5, 3.0);
    p.add_variable(rng.uniform(-5.0, 5.0), 0.0, ub);
    x0[i] = rng.uniform(0.0, ub);
  }
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<Term> terms;
    double lhs_at_x0 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(0.6)) continue;
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({i, c});
      lhs_at_x0 += c * x0[i];
    }
    if (terms.empty()) continue;
    p.add_constraint(std::move(terms), Relation::kLessEqual,
                     lhs_at_x0 + rng.uniform(0.1, 2.0));
  }
  return p;
}

class SolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreement, SimplexAndIpmMatchOnRandomLps) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 25));
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 20));
  const Problem p = random_boxed_lp(rng, n, m);

  const Solution sx = SimplexSolver().solve(p);
  const Solution ip = InteriorPointSolver().solve(p);
  ASSERT_TRUE(sx.optimal()) << "simplex failed on seed " << GetParam();
  ASSERT_TRUE(ip.optimal()) << "IPM failed on seed " << GetParam();

  const double scale = 1.0 + std::abs(sx.objective);
  EXPECT_NEAR(sx.objective, ip.objective, 1e-5 * scale)
      << "objective mismatch on seed " << GetParam();
  EXPECT_LE(p.max_violation(sx.x), 1e-6);
  EXPECT_LE(p.max_violation(ip.x), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SolverAgreement, ::testing::Range(0, 40));

class EqualityAgreement : public ::testing::TestWithParam<int> {};

TEST_P(EqualityAgreement, AssignmentStyleLpsMatch) {
  // LPs shaped like the HTA relaxation: "pick one of 3" equality rows plus
  // capacity rows — the structure LP-HTA feeds the solver.
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const auto tasks = static_cast<std::size_t>(rng.uniform_int(2, 12));
  Problem p;
  std::vector<std::array<std::size_t, 3>> vars(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (int l = 0; l < 3; ++l) {
      vars[t][static_cast<std::size_t>(l)] =
          p.add_variable(rng.uniform(0.1, 10.0), 0.0, 1.0);
    }
    p.add_constraint({{vars[t][0], 1.0}, {vars[t][1], 1.0}, {vars[t][2], 1.0}},
                     Relation::kEqual, 1.0);
  }
  // capacity on option 0 across tasks; generous enough to stay feasible
  std::vector<Term> cap;
  for (std::size_t t = 0; t < tasks; ++t) {
    cap.push_back({vars[t][0], rng.uniform(0.5, 2.0)});
  }
  p.add_constraint(std::move(cap), Relation::kLessEqual,
                   static_cast<double>(tasks));

  const Solution sx = SimplexSolver().solve(p);
  const Solution ip = InteriorPointSolver().solve(p);
  ASSERT_TRUE(sx.optimal());
  ASSERT_TRUE(ip.optimal());
  const double scale = 1.0 + std::abs(sx.objective);
  EXPECT_NEAR(sx.objective, ip.objective, 1e-5 * scale);
  // Every equality row must hold exactly for the simplex vertex.
  EXPECT_LE(p.max_violation(sx.x), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(AssignmentLps, EqualityAgreement,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace mecsched::lp
