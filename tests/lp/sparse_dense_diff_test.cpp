// Differential suite: the sparse LP kernels must agree with the dense
// ones on randomized HTA-shaped instances across density regimes, plus the
// degenerate all-dense and empty-pattern edge cases.
//
//   * interior point — kForceSparse vs kForceDense agree on objective,
//     primal point and constraint duals (different factorization, same
//     optimum);
//   * simplex — sparse pricing reproduces dense pricing bit-for-bit
//     (identical reduced costs => identical pivot sequence => identical
//     vertex and iteration count).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/sparse_matrix.h"

namespace mecsched::lp {
namespace {

// Random feasible-by-construction boxed LP (the cross_check_test generator
// with a tunable row density).
Problem random_boxed_lp(mecsched::Rng& rng, std::size_t n, std::size_t m,
                        double row_density) {
  Problem p;
  std::vector<double> x0(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ub = rng.uniform(0.5, 3.0);
    p.add_variable(rng.uniform(-5.0, 5.0), 0.0, ub);
    x0[i] = rng.uniform(0.0, ub);
  }
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<Term> terms;
    double lhs_at_x0 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(row_density)) continue;
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({i, c});
      lhs_at_x0 += c * x0[i];
    }
    if (terms.empty()) continue;
    p.add_constraint(std::move(terms), Relation::kLessEqual,
                     lhs_at_x0 + rng.uniform(0.1, 2.0));
  }
  return p;
}

// HTA-relaxation-shaped LP: one "pick one of 3 placements" equality row
// per task plus a handful of capacity rows — the structure LP-HTA feeds
// the solvers, sized past the kAuto dispatch threshold.
Problem hta_shaped_lp(mecsched::Rng& rng, std::size_t tasks,
                      std::size_t capacity_rows) {
  Problem p;
  std::vector<std::array<std::size_t, 3>> vars(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t l = 0; l < 3; ++l) {
      vars[t][l] = p.add_variable(rng.uniform(0.1, 10.0), 0.0, 1.0);
    }
    p.add_constraint({{vars[t][0], 1.0}, {vars[t][1], 1.0}, {vars[t][2], 1.0}},
                     Relation::kEqual, 1.0);
  }
  for (std::size_t c = 0; c < capacity_rows; ++c) {
    std::vector<Term> cap;
    for (std::size_t t = c; t < tasks; t += capacity_rows) {
      cap.push_back({vars[t][c % 3], rng.uniform(0.5, 2.0)});
    }
    if (cap.empty()) continue;
    p.add_constraint(std::move(cap), Relation::kLessEqual,
                     static_cast<double>(tasks));
  }
  return p;
}

InteriorPointOptions ipm_with(SparseMode mode) {
  InteriorPointOptions o;
  o.sparse_mode = mode;
  return o;
}

SimplexOptions smx_with(SparseMode mode,
                        PricingRule pricing = PricingRule::kDantzig) {
  SimplexOptions o;
  o.sparse_pricing = mode;
  o.pricing = pricing;
  return o;
}

void expect_ipm_paths_agree(const Problem& p, const char* label) {
  const Solution dense =
      InteriorPointSolver(ipm_with(SparseMode::kForceDense)).solve(p);
  const Solution sparse =
      InteriorPointSolver(ipm_with(SparseMode::kForceSparse)).solve(p);
  ASSERT_TRUE(dense.optimal()) << label;
  ASSERT_TRUE(sparse.optimal()) << label;

  const double scale = 1.0 + std::fabs(dense.objective);
  EXPECT_NEAR(dense.objective, sparse.objective, 1e-6 * scale) << label;
  EXPECT_LE(p.max_violation(sparse.x), 1e-5) << label;

  ASSERT_EQ(dense.x.size(), sparse.x.size()) << label;
  for (std::size_t i = 0; i < dense.x.size(); ++i) {
    EXPECT_NEAR(dense.x[i], sparse.x[i], 1e-4 * scale) << label << " x" << i;
  }
  ASSERT_EQ(dense.duals.size(), sparse.duals.size()) << label;
  for (std::size_t r = 0; r < dense.duals.size(); ++r) {
    EXPECT_NEAR(dense.duals[r], sparse.duals[r], 1e-4 * scale)
        << label << " dual" << r;
  }
}

void expect_simplex_paths_identical(const Problem& p, PricingRule pricing,
                                    const char* label) {
  const Solution dense =
      SimplexSolver(smx_with(SparseMode::kForceDense, pricing)).solve(p);
  const Solution sparse =
      SimplexSolver(smx_with(SparseMode::kForceSparse, pricing)).solve(p);
  ASSERT_TRUE(dense.optimal()) << label;
  ASSERT_TRUE(sparse.optimal()) << label;
  // Same pivots, same vertex — exact agreement, not tolerance agreement.
  EXPECT_EQ(dense.iterations, sparse.iterations) << label;
  EXPECT_DOUBLE_EQ(dense.objective, sparse.objective) << label;
  ASSERT_EQ(dense.x.size(), sparse.x.size()) << label;
  for (std::size_t i = 0; i < dense.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(dense.x[i], sparse.x[i]) << label << " x" << i;
  }
  ASSERT_EQ(dense.duals.size(), sparse.duals.size()) << label;
  for (std::size_t r = 0; r < dense.duals.size(); ++r) {
    EXPECT_DOUBLE_EQ(dense.duals[r], sparse.duals[r]) << label << " y" << r;
  }
}

class SparseDenseDiff : public ::testing::TestWithParam<int> {};

TEST_P(SparseDenseDiff, IpmAgreesOnHtaShapedLps) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const auto tasks = static_cast<std::size_t>(rng.uniform_int(12, 48));
  const auto caps = static_cast<std::size_t>(rng.uniform_int(2, 6));
  expect_ipm_paths_agree(hta_shaped_lp(rng, tasks, caps), "hta");
}

TEST_P(SparseDenseDiff, IpmAgreesAcrossDensityRegimes) {
  const std::array<double, 3> densities = {0.05, 0.3, 0.9};
  for (const double density : densities) {
    mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 11);
    const Problem p = random_boxed_lp(rng, 45, 36, density);
    expect_ipm_paths_agree(p, "density");
  }
}

TEST_P(SparseDenseDiff, SimplexPricingIsBitIdentical) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2713 + 29);
  const auto tasks = static_cast<std::size_t>(rng.uniform_int(10, 40));
  const Problem p = hta_shaped_lp(rng, tasks, 4);
  expect_simplex_paths_identical(p, PricingRule::kDantzig, "dantzig");
  expect_simplex_paths_identical(p, PricingRule::kDevex, "devex");
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SparseDenseDiff,
                         ::testing::Range(0, 12));

TEST(SparseDenseDiffEdge, DegenerateAllDenseMatrix) {
  // Every coefficient nonzero: the worst case for the sparse structures,
  // which must still produce the same answers when forced on.
  mecsched::Rng rng(17);
  const Problem p = random_boxed_lp(rng, 40, 34, 1.0);
  expect_ipm_paths_agree(p, "all-dense");
  expect_simplex_paths_identical(p, PricingRule::kDantzig, "all-dense");
}

TEST(SparseDenseDiffEdge, EmptyConstraintPattern) {
  // No constraints and no finite upper bounds: the standard form has a
  // 0-row A. Both kernels must handle the empty normal equations.
  Problem p;
  for (int i = 0; i < 6; ++i) p.add_variable(1.0 + i, 0.0, kInfinity);
  const Solution dense =
      InteriorPointSolver(ipm_with(SparseMode::kForceDense)).solve(p);
  const Solution sparse =
      InteriorPointSolver(ipm_with(SparseMode::kForceSparse)).solve(p);
  ASSERT_TRUE(dense.optimal());
  ASSERT_TRUE(sparse.optimal());
  EXPECT_NEAR(dense.objective, 0.0, 1e-6);
  EXPECT_NEAR(sparse.objective, 0.0, 1e-6);
}

TEST(SparseDenseDiffEdge, AutoDispatchMatchesForcedPathsOnLargeSparseLp) {
  // kAuto must route a large sparse HTA instance to the sparse kernels and
  // still match the dense answer (sanity on the dispatch wiring itself).
  mecsched::Rng rng(23);
  const Problem p = hta_shaped_lp(rng, 40, 5);
  const Solution autod = InteriorPointSolver().solve(p);
  const Solution dense =
      InteriorPointSolver(ipm_with(SparseMode::kForceDense)).solve(p);
  ASSERT_TRUE(autod.optimal());
  ASSERT_TRUE(dense.optimal());
  const double scale = 1.0 + std::fabs(dense.objective);
  EXPECT_NEAR(autod.objective, dense.objective, 1e-6 * scale);
}

}  // namespace
}  // namespace mecsched::lp
