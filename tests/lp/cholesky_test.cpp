#include "lp/cholesky.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mecsched::lp {
namespace {

TEST(CholeskyTest, SolvesIdentity) {
  const Cholesky c(Matrix::identity(4));
  const auto x = c.solve({1, 2, 3, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[i], static_cast<double>(i) + 1.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(c.regularization(), 0.0);
}

TEST(CholeskyTest, SolvesKnownSpdSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const Cholesky c(a);
  // Solve [4 2; 2 3] x = [10; 9] -> x = [1.5, 2]
  const auto x = c.solve({10, 9});
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RandomSpdRoundTrip) {
  mecsched::Rng rng(123);
  const std::size_t n = 20;
  // A = G G^T + n I is SPD.
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
  Matrix a = g.multiply(g.transposed());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);

  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-5, 5);
  const auto b = a.multiply(x_true);

  const Cholesky c(a);
  const auto x = c.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, RegularizesSemidefinite) {
  // Rank-1 matrix: [1 1; 1 1]; semidefinite, needs a pivot bump.
  Matrix a(2, 2, 1.0);
  const Cholesky c(a);
  EXPECT_GT(c.regularization(), 0.0);
  // Solution should still satisfy the (regularized) system approximately.
  const auto x = c.solve({2.0, 2.0});
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -5;  // strongly indefinite
  EXPECT_THROW(Cholesky{a}, SolverError);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_THROW(Cholesky{Matrix(2, 3)}, ModelError);
}

TEST(CholeskyTest, SolveRejectsWrongSize) {
  const Cholesky c(Matrix::identity(3));
  EXPECT_THROW(c.solve({1.0}), ModelError);
}

}  // namespace
}  // namespace mecsched::lp
