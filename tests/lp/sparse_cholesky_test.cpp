// Tests for the symbolic/numeric-split sparse Cholesky on the normal
// equations M = A·D·Aᵀ: agreement with the dense factorization, symbolic
// reuse across numeric refactorizations, the regularization contract and
// the pattern-keyed symbolic cache.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "lp/cholesky.h"
#include "lp/matrix.h"
#include "lp/sparse_cholesky.h"
#include "lp/sparse_matrix.h"

namespace mecsched::lp {
namespace {

// Random m×n CSR matrix with a guaranteed unit "spine" on the leading
// m×m block, so A has full row rank and M = A·D·Aᵀ is positive definite
// for any d > 0.
SparseMatrix random_full_rank(mecsched::Rng& rng, std::size_t m,
                              std::size_t n, double density) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i) {
    t.push_back({i, i, 1.0 + rng.uniform(0.0, 1.0)});
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.bernoulli(density)) t.push_back({i, j, rng.uniform(-2.0, 2.0)});
    }
  }
  return SparseMatrix::from_triplets(m, n, std::move(t));
}

// Dense M = A·diag(d)·Aᵀ reference.
Matrix dense_normal(const SparseMatrix& a, const std::vector<double>& d) {
  const Matrix ad = a.to_dense();
  Matrix m(a.rows(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += ad(i, k) * d[k] * ad(j, k);
      }
      m(i, j) = acc;
    }
  }
  return m;
}

TEST(SparseCholeskyTest, SolveMatchesDenseCholesky) {
  mecsched::Rng rng(42);
  const std::size_t m = 40, n = 90;
  const SparseMatrix a = random_full_rank(rng, m, n, 0.08);
  const SparseMatrix at = a.transposed();
  std::vector<double> d(n);
  for (double& v : d) v = rng.uniform(0.1, 5.0);
  std::vector<double> b(m);
  for (double& v : b) v = rng.uniform(-3.0, 3.0);

  const auto sym = std::make_shared<const NormalEquationsSymbolic>(a);
  const NormalCholesky sparse(a, at, d, sym);
  const std::vector<double> xs = sparse.solve(b);

  const Matrix mref = dense_normal(a, d);
  const Cholesky dense(mref);
  const std::vector<double> xd = dense.solve(b);

  ASSERT_EQ(xs.size(), m);
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-7);

  // Independent residual check: M xs == b.
  const std::vector<double> mx = mref.multiply(xs);
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(mx[i], b[i], 1e-6);
}

TEST(SparseCholeskyTest, SymbolicReusesAcrossNumericRefactorizations) {
  mecsched::Rng rng(7);
  const std::size_t m = 48, n = 120;
  const SparseMatrix a = random_full_rank(rng, m, n, 0.05);
  const SparseMatrix at = a.transposed();
  const auto sym = std::make_shared<const NormalEquationsSymbolic>(a);
  EXPECT_EQ(sym->dim(), m);
  EXPECT_EQ(sym->pattern_fingerprint(), a.pattern_fingerprint());
  // L always contains the (permuted) upper triangle of M.
  EXPECT_GE(sym->fill_ratio(), 1.0);
  EXPECT_GE(sym->factor_nnz(), (sym->normal_nnz() + m) / 2);

  // Two different IPM-style diagonals over the same symbolic object: both
  // factorizations must solve their own system.
  for (int round = 0; round < 2; ++round) {
    std::vector<double> d(n);
    for (double& v : d) v = rng.uniform(1e-3, 10.0);
    std::vector<double> b(m);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    const NormalCholesky chol(a, at, d, sym);
    const std::vector<double> x = chol.solve(b);
    const std::vector<double> mx = dense_normal(a, d).multiply(x);
    for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(mx[i], b[i], 1e-6);
    EXPECT_DOUBLE_EQ(chol.regularization(), 0.0);
  }
}

TEST(SparseCholeskyTest, RankDeficientSystemsAreRegularizedNotFatal) {
  // Two identical rows make M exactly singular; the factorization must
  // bump the zero pivot instead of throwing (the IPM drifts here near
  // convergence).
  const SparseMatrix a = SparseMatrix::from_triplets(
      34, 40,
      [] {
        std::vector<Triplet> t;
        for (std::size_t i = 0; i < 33; ++i) t.push_back({i, i, 1.0});
        t.push_back({33, 32, 1.0});  // row 33 duplicates row 32
        return t;
      }());
  const SparseMatrix at = a.transposed();
  const std::vector<double> d(40, 1.0);
  const auto sym = std::make_shared<const NormalEquationsSymbolic>(a);
  const NormalCholesky chol(a, at, d, sym);
  EXPECT_GT(chol.regularization(), 0.0);
  const std::vector<double> x = chol.solve(std::vector<double>(34, 1.0));
  EXPECT_EQ(x.size(), 34u);
  for (const double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(SparseCholeskyTest, EmptySystem) {
  const SparseMatrix a = SparseMatrix::from_triplets(0, 5, {});
  const auto sym = std::make_shared<const NormalEquationsSymbolic>(a);
  EXPECT_EQ(sym->dim(), 0u);
  EXPECT_EQ(sym->factor_nnz(), 0u);
  const NormalCholesky chol(a, a.transposed(), std::vector<double>(5, 1.0),
                            sym);
  EXPECT_TRUE(chol.solve({}).empty());
}

TEST(SymbolicFactorCacheTest, HitsReuseAndEvictionRespectsCapacity) {
  mecsched::Rng rng(99);
  SymbolicFactorCache cache(/*capacity=*/1);
  const SparseMatrix a = random_full_rank(rng, 36, 50, 0.1);
  const SparseMatrix b = random_full_rank(rng, 36, 50, 0.1);
  ASSERT_NE(a.pattern_fingerprint(), b.pattern_fingerprint());

  const auto first = cache.analyze(a);
  EXPECT_EQ(cache.size(), 1u);
  // Same pattern (same matrix) — must be the identical shared object.
  EXPECT_EQ(cache.analyze(a).get(), first.get());

  // A second pattern evicts the first at capacity 1...
  const auto second = cache.analyze(b);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(second->pattern_fingerprint(), b.pattern_fingerprint());
  // ...but the evicted analysis stays valid through its shared_ptr.
  EXPECT_EQ(first->pattern_fingerprint(), a.pattern_fingerprint());

  cache.set_capacity(2);
  cache.analyze(a);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SymbolicFactorCacheTest, ValueChangesDoNotMissTheCache) {
  SymbolicFactorCache cache(4);
  const SparseMatrix a =
      SparseMatrix::from_triplets(33, 33, [] {
        std::vector<Triplet> t;
        for (std::size_t i = 0; i < 33; ++i) t.push_back({i, i, 2.0});
        return t;
      }());
  // Same pattern, different values: one symbolic analysis serves both (the
  // IPM re-analyzing per iteration would defeat the whole split).
  const SparseMatrix rescaled =
      SparseMatrix::from_triplets(33, 33, [] {
        std::vector<Triplet> t;
        for (std::size_t i = 0; i < 33; ++i) t.push_back({i, i, -7.5});
        return t;
      }());
  EXPECT_EQ(cache.analyze(a).get(), cache.analyze(rescaled).get());
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace mecsched::lp
