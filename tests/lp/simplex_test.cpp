#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "lp/problem.h"

namespace mecsched::lp {
namespace {

TEST(SimplexTest, EmptyProblemIsOptimal) {
  const Solution s = SimplexSolver().solve(Problem{});
  EXPECT_TRUE(s.optimal());
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(SimplexTest, UnconstrainedBoundedVariablesSitAtBestBound) {
  Problem p;
  p.add_variable(1.0, 0.0, 5.0);    // min +x  -> 0
  p.add_variable(-2.0, 1.0, 3.0);   // min -2y -> y = 3
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 0.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, -6.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableLP) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier-Lieberman)
  // optimum (2, 6), value 36.
  Problem p;
  const auto x = p.add_variable(-3.0, 0.0, kInfinity);
  const auto y = p.add_variable(-5.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0, 1e-8);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x - y = 1 -> x=2, y=1, obj=4.
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, kInfinity);
  const auto y = p.add_variable(2.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 1.0, 1e-8);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> (4,0)? obj 8 vs y=3,x=1 obj 11.
  Problem p;
  const auto x = p.add_variable(2.0, 0.0, kInfinity);
  const auto y = p.add_variable(3.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 4.0);
  p.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 1.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-8);
  EXPECT_NEAR(s.x[0], 4.0, 1e-8);
}

TEST(SimplexTest, DetectsInfeasibility) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);  // x<=1 forced >=2
  const Solution s = SimplexSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualitySystem) {
  Problem p;
  const auto x = p.add_variable(0.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}}, Relation::kEqual, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kEqual, 2.0);
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Problem p;
  const auto x = p.add_variable(-1.0, 0.0, kInfinity);  // min -x, x free up
  p.add_constraint({{x, -1.0}}, Relation::kLessEqual, 0.0);  // -x <= 0 (no cap)
  const Solution s = SimplexSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, UpperBoundedVariablesUseBoundFlips) {
  // max x1 + 2x2 + 3x3, xi in [0,1], x1+x2+x3 <= 2
  // -> x3=1, x2=1, x1=0; obj -5.
  Problem p;
  std::vector<std::size_t> v;
  for (double c : {-1.0, -2.0, -3.0}) v.push_back(p.add_variable(c, 0.0, 1.0));
  p.add_constraint({{v[0], 1.0}, {v[1], 1.0}, {v[2], 1.0}},
                   Relation::kLessEqual, 2.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -5.0, 1e-8);
  EXPECT_NEAR(s.x[0], 0.0, 1e-8);
  EXPECT_NEAR(s.x[1], 1.0, 1e-8);
  EXPECT_NEAR(s.x[2], 1.0, 1e-8);
}

TEST(SimplexTest, NonzeroLowerBounds) {
  // min x + y, x in [2, 10], y in [3, 10], x + y >= 7 -> (2,5) or (4,3): obj 7.
  Problem p;
  const auto x = p.add_variable(1.0, 2.0, 10.0);
  const auto y = p.add_variable(1.0, 3.0, 10.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 7.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 7.0, 1e-8);
  EXPECT_GE(s.x[0], 2.0 - 1e-9);
  EXPECT_GE(s.x[1], 3.0 - 1e-9);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // A classically degenerate LP (multiple constraints active at origin).
  Problem p;
  const auto x = p.add_variable(-0.75, 0.0, kInfinity);
  const auto y = p.add_variable(150.0, 0.0, kInfinity);
  const auto z = p.add_variable(-0.02, 0.0, kInfinity);
  const auto w = p.add_variable(6.0, 0.0, kInfinity);
  // Beale's cycling example.
  p.add_constraint({{x, 0.25}, {y, -60.0}, {z, -0.04}, {w, 9.0}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint({{x, 0.5}, {y, -90.0}, {z, -0.02}, {w, 3.0}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint({{z, 1.0}}, Relation::kLessEqual, 1.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
}

TEST(SimplexTest, SolutionIsAlwaysFeasible) {
  Problem p;
  const auto x = p.add_variable(-1.0, 0.0, 2.0);
  const auto y = p.add_variable(-1.0, 0.0, 2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 3.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_LE(p.max_violation(s.x), 1e-7);
  EXPECT_NEAR(s.objective, -3.0, 1e-8);
}

TEST(SimplexTest, FixedVariableViaEqualBounds) {
  Problem p;
  const auto x = p.add_variable(5.0, 2.0, 2.0);  // pinned to 2
  const auto y = p.add_variable(1.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 5.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-8);
}

// The Hillier-Lieberman LP of ClassicTwoVariableLP, reused by the warm-
// start tests below.
Problem classic_lp() {
  Problem p;
  const auto x = p.add_variable(-3.0, 0.0, kInfinity);
  const auto y = p.add_variable(-5.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  return p;
}

TEST(SimplexTest, WarmStartNeverChangesTheOptimum) {
  const Problem p = classic_lp();
  const Solution cold = SimplexSolver().solve(p);
  ASSERT_TRUE(cold.optimal());
  // Whatever the guess — the optimum, a wrong vertex, an infeasible point —
  // the warm solve must land on the same objective.
  const std::vector<std::vector<double>> guesses = {
      {2.0, 6.0},     // the optimum itself
      {4.0, 0.0},     // a different vertex
      {100.0, -5.0},  // nowhere near feasible
      {0.0, 0.0},     // the cold start's own point
  };
  for (const auto& guess : guesses) {
    const Solution warm = SimplexSolver().solve(p, guess);
    ASSERT_TRUE(warm.optimal());
    EXPECT_NEAR(warm.objective, cold.objective, 1e-8);
    EXPECT_NEAR(warm.x[0], cold.x[0], 1e-8);
    EXPECT_NEAR(warm.x[1], cold.x[1], 1e-8);
  }
}

TEST(SimplexTest, WarmStartHandlesBoundedAndEqualityRows) {
  // min x + 2y s.t. x + y = 3, x - y = 1 -> x=2, y=1 (equality rows get no
  // slack, so the crash start must fall back to artificials there).
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, 10.0);
  const auto y = p.add_variable(2.0, 0.0, 10.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0);
  const Solution warm = SimplexSolver().solve(p, {9.5, 9.5});
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.x[0], 2.0, 1e-8);
  EXPECT_NEAR(warm.x[1], 1.0, 1e-8);
  EXPECT_NEAR(warm.objective, 4.0, 1e-8);
}

TEST(SimplexTest, WarmStartGuessSizeMismatchThrows) {
  const Problem p = classic_lp();
  EXPECT_THROW(SimplexSolver().solve(p, {1.0}), ModelError);
  EXPECT_THROW(SimplexSolver().solve(p, {1.0, 2.0, 3.0}), ModelError);
}

}  // namespace
}  // namespace mecsched::lp
