// The simplex must reach the same optimum regardless of its tuning knobs
// (refactorization cadence, Bland trigger, tolerance) — these affect speed
// and numerical hygiene, never the answer.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace mecsched::lp {
namespace {

Problem random_lp(mecsched::Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(3, 15));
  const auto m = static_cast<std::size_t>(rng.uniform_int(2, 10));
  Problem p;
  std::vector<double> x0(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ub = rng.uniform(0.5, 3.0);
    p.add_variable(rng.uniform(-4.0, 4.0), 0.0, ub);
    x0[i] = rng.uniform(0.0, ub);
  }
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(0.5)) continue;
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({i, c});
      lhs += c * x0[i];
    }
    if (terms.empty()) continue;
    p.add_constraint(std::move(terms), Relation::kLessEqual,
                     lhs + rng.uniform(0.05, 1.0));
  }
  return p;
}

struct NamedOptions {
  const char* name;
  SimplexOptions options;
};

std::vector<NamedOptions> option_grid() {
  std::vector<NamedOptions> out;
  out.push_back({"default", SimplexOptions{}});

  SimplexOptions frequent_refactor;
  frequent_refactor.refactor_period = 1;  // refactorize every pivot
  out.push_back({"refactor-every-pivot", frequent_refactor});

  SimplexOptions rare_refactor;
  rare_refactor.refactor_period = 100'000;  // effectively never
  out.push_back({"refactor-never", rare_refactor});

  SimplexOptions eager_bland;
  eager_bland.bland_trigger = 0;  // Bland's rule from the first pivot
  out.push_back({"always-bland", eager_bland});

  SimplexOptions loose_tol;
  loose_tol.tolerance = 1e-7;
  out.push_back({"loose-tolerance", loose_tol});
  return out;
}

class SimplexKnobs : public ::testing::TestWithParam<int> {};

TEST_P(SimplexKnobs, AllConfigurationsAgree) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 509 + 23);
  const Problem p = random_lp(rng);
  const Solution reference = SimplexSolver().solve(p);
  ASSERT_TRUE(reference.optimal()) << "seed " << GetParam();

  for (const NamedOptions& cfg : option_grid()) {
    const Solution s = SimplexSolver(cfg.options).solve(p);
    ASSERT_TRUE(s.optimal()) << cfg.name << ", seed " << GetParam();
    EXPECT_NEAR(s.objective, reference.objective,
                1e-6 * (1.0 + std::abs(reference.objective)))
        << cfg.name << ", seed " << GetParam();
    EXPECT_LE(p.max_violation(s.x), 1e-6) << cfg.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SimplexKnobs, ::testing::Range(0, 20));

TEST(SimplexKnobsTest, TinyIterationLimitReportsLimit) {
  SimplexOptions opts;
  opts.max_iterations = 1;
  Problem p;
  const auto x = p.add_variable(-1.0, 0.0, kInfinity);
  const auto y = p.add_variable(-2.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 10.0);
  p.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::kLessEqual, 15.0);
  const Solution s = SimplexSolver(opts).solve(p);
  EXPECT_EQ(s.status, SolveStatus::kIterationLimit);
}

}  // namespace
}  // namespace mecsched::lp
