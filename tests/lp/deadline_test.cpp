// The anytime contract of the budgeted LP engines (docs/robustness.md):
// an expired token yields SolveStatus::kDeadline at the next iteration
// boundary, and whenever the degraded solution is non-empty it is a usable
// answer — primal feasible for the simplex (its phase-2 points are BFS by
// construction), bound-respecting for the interior-point method.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/chaos_hook.h"
#include "common/deadline.h"
#include "common/error.h"
#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace mecsched::lp {
namespace {

// Minimal deterministic hook: fire one action at one (engine, iteration)
// site. Armed for the lifetime of the object.
class FaultAt final : public chaos::Hook {
 public:
  FaultAt(std::string engine, std::size_t iteration, chaos::Action action)
      : engine_(std::move(engine)), iteration_(iteration), action_(action) {
    chaos::arm(this);
  }
  ~FaultAt() override { chaos::arm(nullptr); }
  FaultAt(const FaultAt&) = delete;
  FaultAt& operator=(const FaultAt&) = delete;

  chaos::Action probe(const char* engine, std::size_t, std::size_t,
                      std::size_t iteration) override {
    return engine_ == engine && iteration_ == iteration ? action_
                                                        : chaos::Action::kNone;
  }

 private:
  std::string engine_;
  std::size_t iteration_;
  chaos::Action action_;
};

// A small but non-trivial LP that takes several pivots: a transportation-
// style problem with equality and inequality rows and finite bounds.
Problem pivoting_problem() {
  Problem p;
  const auto x1 = p.add_variable(4.0, 0.0, 8.0);
  const auto x2 = p.add_variable(3.0, 0.0, 8.0);
  const auto x3 = p.add_variable(6.0, 0.0, 8.0);
  const auto x4 = p.add_variable(2.0, 0.0, 8.0);
  p.add_constraint({{x1, 1.0}, {x2, 1.0}}, Relation::kEqual, 5.0);
  p.add_constraint({{x3, 1.0}, {x4, 1.0}}, Relation::kEqual, 6.0);
  p.add_constraint({{x1, 1.0}, {x3, 1.0}}, Relation::kGreaterEqual, 4.0);
  p.add_constraint({{x2, 1.0}, {x4, 1.0}}, Relation::kLessEqual, 9.0);
  p.add_constraint({{x1, 2.0}, {x4, 1.0}}, Relation::kGreaterEqual, 3.0);
  return p;
}

TEST(SimplexDeadline, ExpiredTokenReturnsDeadlineBeforeAnyPivot) {
  SimplexOptions opts;
  opts.cancel = CancellationToken(Deadline::after_s(0.0));
  const Solution s = SimplexSolver(opts).solve(pivoting_problem());
  EXPECT_EQ(s.status, SolveStatus::kDeadline);
  EXPECT_TRUE(s.x.empty());  // expiry before a feasible point existed
  EXPECT_EQ(s.iterations, 0u);
}

TEST(SimplexDeadline, AnytimeContractHoldsAtEveryCutoff) {
  const Problem p = pivoting_problem();
  const Solution full = SimplexSolver().solve(p);
  ASSERT_TRUE(full.optimal());
  ASSERT_GT(full.iterations, 0u);

  // Cancel at every iteration a full solve passes through. Whatever the
  // cutoff, the result is kDeadline, and a non-empty x is primal feasible
  // with an objective no better than the optimum (minimization).
  for (std::size_t k = 0; k < full.iterations; ++k) {
    const FaultAt fault("simplex", k, chaos::Action::kCancel);
    const Solution s = SimplexSolver().solve(p);
    ASSERT_EQ(s.status, SolveStatus::kDeadline) << "cutoff " << k;
    if (!s.x.empty()) {
      EXPECT_LE(p.max_violation(s.x), 1e-6) << "cutoff " << k;
      EXPECT_GE(s.objective, full.objective - 1e-9) << "cutoff " << k;
    }
  }
}

TEST(SimplexDeadline, StallFaultAlsoDegradesToDeadline) {
  const FaultAt fault("simplex", 0, chaos::Action::kStall);
  const Solution s = SimplexSolver().solve(pivoting_problem());
  EXPECT_EQ(s.status, SolveStatus::kDeadline);
}

TEST(SimplexDeadline, NanPoisonSurfacesAsSolverErrorNotWrongAnswer) {
  // A poisoned basis must never masquerade as kOptimal or kInfeasible —
  // the NaN-blindness of comparisons is exactly what the finite guards in
  // the pricing loop exist to catch.
  const FaultAt fault("simplex", 1, chaos::Action::kPoisonNan);
  EXPECT_THROW(SimplexSolver().solve(pivoting_problem()), SolverError);
}

TEST(SimplexDeadline, SpuriousErrorFaultPropagates) {
  const FaultAt fault("simplex", 0, chaos::Action::kError);
  EXPECT_THROW(SimplexSolver().solve(pivoting_problem()), SolverError);
}

TEST(SimplexDeadline, DefaultBudgetIsPickedUpByTheSolver) {
  set_default_solve_budget_ms(1e-6);  // effectively already expired
  const Solution s = SimplexSolver().solve(pivoting_problem());
  set_default_solve_budget_ms(0.0);
  EXPECT_EQ(s.status, SolveStatus::kDeadline);
}

TEST(IpmDeadline, ExpiredTokenReturnsClampedIterate) {
  const Problem p = pivoting_problem();
  InteriorPointOptions opts;
  opts.cancel = CancellationToken(Deadline::after_s(0.0));
  const Solution s = InteriorPointSolver(opts).solve(p);
  EXPECT_EQ(s.status, SolveStatus::kDeadline);
  ASSERT_EQ(s.x.size(), p.num_variables());
  for (std::size_t v = 0; v < p.num_variables(); ++v) {
    EXPECT_GE(s.x[v], p.lower(v) - 1e-9);
    EXPECT_LE(s.x[v], p.upper(v) + 1e-9);
  }
}

TEST(IpmDeadline, CancelMidSolveKeepsTheLastIterate) {
  const FaultAt fault("ipm", 2, chaos::Action::kCancel);
  const Problem p = pivoting_problem();
  const Solution s = InteriorPointSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::kDeadline);
  EXPECT_EQ(s.x.size(), p.num_variables());
}

TEST(IpmDeadline, NanPoisonSurfacesAsSolverError) {
  const FaultAt fault("ipm", 1, chaos::Action::kPoisonNan);
  EXPECT_THROW(InteriorPointSolver().solve(pivoting_problem()), SolverError);
}

TEST(IpmDeadline, StatusStringIsStable) {
  EXPECT_EQ(to_string(SolveStatus::kDeadline), "deadline");
}

}  // namespace
}  // namespace mecsched::lp
