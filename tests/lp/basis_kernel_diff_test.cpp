// Differential suite: the eta-file LU basis kernel (BasisKernel::kEtaLu)
// must reach the same optimum as the historical dense-inverse kernel
// (BasisKernel::kDenseInverse) on seeded HTA-shaped, degenerate and
// bound-flip-heavy instances, cold and warm-started. The two kernels
// compute duals with different floating-point operation orders, so pivot
// paths may diverge at near-ties — the contract is the optimum (objective,
// vertex, feasibility), not the pivot count, and comparisons are
// tolerance-based where the bit-identity harness in
// sparse_dense_diff_test.cpp compares exactly.
//
// Also here: the eta-accumulation stress test — a long eta file (huge
// refactor budget) against refactorization after every pivot — asserting
// drift stays inside the LpCertificate tolerances (solves run under
// audit::Level::kFull, so each one is certificate-checked too).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace mecsched::lp {
namespace {

// Random feasible-by-construction boxed LP (same generator family as
// sparse_dense_diff_test.cpp).
Problem random_boxed_lp(mecsched::Rng& rng, std::size_t n, std::size_t m,
                        double row_density) {
  Problem p;
  std::vector<double> x0(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ub = rng.uniform(0.5, 3.0);
    p.add_variable(rng.uniform(-5.0, 5.0), 0.0, ub);
    x0[i] = rng.uniform(0.0, ub);
  }
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<Term> terms;
    double lhs_at_x0 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(row_density)) continue;
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({i, c});
      lhs_at_x0 += c * x0[i];
    }
    if (terms.empty()) continue;
    p.add_constraint(std::move(terms), Relation::kLessEqual,
                     lhs_at_x0 + rng.uniform(0.1, 2.0));
  }
  return p;
}

// HTA-relaxation-shaped LP: the fig2a sweep-cell structure — one "pick one
// of 3 placements" equality row per task plus capacity rows.
Problem hta_shaped_lp(mecsched::Rng& rng, std::size_t tasks,
                      std::size_t capacity_rows) {
  Problem p;
  std::vector<std::array<std::size_t, 3>> vars(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t l = 0; l < 3; ++l) {
      vars[t][l] = p.add_variable(rng.uniform(0.1, 10.0), 0.0, 1.0);
    }
    p.add_constraint({{vars[t][0], 1.0}, {vars[t][1], 1.0}, {vars[t][2], 1.0}},
                     Relation::kEqual, 1.0);
  }
  for (std::size_t c = 0; c < capacity_rows; ++c) {
    std::vector<Term> cap;
    for (std::size_t t = c; t < tasks; t += capacity_rows) {
      cap.push_back({vars[t][c % 3], rng.uniform(0.5, 2.0)});
    }
    if (cap.empty()) continue;
    p.add_constraint(std::move(cap), Relation::kLessEqual,
                     static_cast<double>(tasks));
  }
  return p;
}

// Heavily degenerate HTA shape: every placement of a task costs the same
// (pricing ties everywhere) and the capacity rows are exactly binding at
// the one-per-task vertex (degenerate ratio tests, Bland territory).
Problem degenerate_lp(mecsched::Rng& rng, std::size_t tasks) {
  Problem p;
  std::vector<std::array<std::size_t, 3>> vars(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    const double cost = rng.uniform(1.0, 4.0);  // tie across placements
    for (std::size_t l = 0; l < 3; ++l) {
      vars[t][l] = p.add_variable(cost, 0.0, 1.0);
    }
    p.add_constraint({{vars[t][0], 1.0}, {vars[t][1], 1.0}, {vars[t][2], 1.0}},
                     Relation::kEqual, 1.0);
  }
  // Capacity exactly equal to the number of contributing tasks: binding
  // with zero slack whenever every such task picks placement 0.
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<Term> cap;
    for (std::size_t t = c; t < tasks; t += 3) cap.push_back({vars[t][0], 1.0});
    const auto count = cap.size();
    if (cap.empty()) continue;
    p.add_constraint(std::move(cap), Relation::kLessEqual,
                     static_cast<double>(count));
  }
  return p;
}

// Bound-flip-heavy boxed LP: mixed-sign costs and a single loose coupling
// row, so most variables resolve by flipping between their finite bounds
// rather than entering the basis.
Problem bound_flip_lp(mecsched::Rng& rng, std::size_t n) {
  Problem p;
  std::vector<Term> row;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 2.5);
    p.add_variable(rng.bernoulli(0.5) ? rng.uniform(0.2, 3.0)
                                      : rng.uniform(-3.0, -0.2),
                   lo, hi);
    row.push_back({i, rng.uniform(0.1, 1.0)});
  }
  p.add_constraint(std::move(row), Relation::kLessEqual,
                   static_cast<double>(n));  // loose: rarely binding
  return p;
}

SimplexOptions with_kernel(BasisKernel kernel,
                           PricingRule pricing = PricingRule::kDantzig) {
  SimplexOptions o;
  o.basis = kernel;
  o.pricing = pricing;
  return o;
}

// The two kernels may take different pivot paths (ulp-level dual
// differences at ties), so agreement is on the optimum itself.
void expect_kernels_agree(const Problem& p, const char* label,
                          PricingRule pricing = PricingRule::kDantzig,
                          const std::vector<double>* guess = nullptr) {
  const SimplexSolver lu_solver(with_kernel(BasisKernel::kEtaLu, pricing));
  const SimplexSolver dense_solver(
      with_kernel(BasisKernel::kDenseInverse, pricing));
  const Solution lu = guess ? lu_solver.solve(p, *guess) : lu_solver.solve(p);
  const Solution dense =
      guess ? dense_solver.solve(p, *guess) : dense_solver.solve(p);
  ASSERT_TRUE(lu.optimal()) << label;
  ASSERT_TRUE(dense.optimal()) << label;

  const double scale = 1.0 + std::fabs(dense.objective);
  EXPECT_NEAR(lu.objective, dense.objective, 1e-7 * scale) << label;
  EXPECT_LE(p.max_violation(lu.x), 1e-7) << label;
  EXPECT_LE(p.max_violation(dense.x), 1e-7) << label;

  // Same optimum. The vertex can differ only when the optimal face is not
  // a point (primal degeneracy of the objective); on these generators the
  // optimum is almost surely unique, so compare the point too.
  ASSERT_EQ(lu.x.size(), dense.x.size()) << label;
  for (std::size_t i = 0; i < lu.x.size(); ++i) {
    EXPECT_NEAR(lu.x[i], dense.x[i], 1e-6 * scale) << label << " x" << i;
  }
}

class BasisKernelDiff : public ::testing::TestWithParam<int> {};

TEST_P(BasisKernelDiff, AgreesOnHtaShapedLps) {
  // fig2a-shaped cells: the structure the sweep feeds LP-HTA.
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
  const auto tasks = static_cast<std::size_t>(rng.uniform_int(12, 60));
  const auto caps = static_cast<std::size_t>(rng.uniform_int(2, 6));
  expect_kernels_agree(hta_shaped_lp(rng, tasks, caps), "hta");
}

TEST_P(BasisKernelDiff, AgreesOnRandomBoxedLps) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 13);
  const Problem p = random_boxed_lp(rng, 40, 30, 0.25);
  expect_kernels_agree(p, "boxed");
  expect_kernels_agree(p, "boxed-devex", PricingRule::kDevex);
}

TEST_P(BasisKernelDiff, AgreesOnDegenerateLps) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 593 + 41);
  const auto tasks = static_cast<std::size_t>(rng.uniform_int(9, 45));
  expect_kernels_agree(degenerate_lp(rng, tasks), "degenerate");
}

TEST_P(BasisKernelDiff, AgreesOnBoundFlipHeavyLps) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 389 + 71);
  const auto n = static_cast<std::size_t>(rng.uniform_int(20, 80));
  expect_kernels_agree(bound_flip_lp(rng, n), "bound-flip");
}

TEST_P(BasisKernelDiff, AgreesWarmStarted) {
  // Warm starts exercise the crash-basis path of both kernels (slacks and
  // bound-snapped nonbasics instead of all-artificial).
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1223 + 97);
  const auto tasks = static_cast<std::size_t>(rng.uniform_int(10, 40));
  const Problem p = hta_shaped_lp(rng, tasks, 3);
  // Hint: placement 0 for every task — feasible for the equalities.
  std::vector<double> guess(p.num_variables(), 0.0);
  for (std::size_t t = 0; t < tasks; ++t) guess[3 * t] = 1.0;
  expect_kernels_agree(p, "warm", PricingRule::kDantzig, &guess);
}

INSTANTIATE_TEST_SUITE_P(SeededInstances, BasisKernelDiff,
                         ::testing::Range(0, 12));

TEST(BasisKernelStress, EtaAccumulationStaysWithinCertificateTolerance) {
  // Force the two extremes of the eta/refactor trade-off on the same
  // instances: refactor_period=1 refactorizes after every pivot (ground
  // truth, no eta drift at all), a huge period lets the eta file grow
  // until the fill or accuracy triggers fire. Accumulated drift must stay
  // inside the LpCertificate tolerances — every solve here runs under
  // audit::Level::kFull, so the certificate (primal/dual feasibility,
  // complementary slackness, duality gap) is checked inside solve() and
  // any violation throws.
  audit::ScopedLevel full_audit(audit::Level::kFull);
  for (int seed = 0; seed < 6; ++seed) {
    mecsched::Rng rng(static_cast<std::uint64_t>(seed) * 4337 + 19);
    const Problem p = hta_shaped_lp(rng, 50, 5);

    SimplexOptions fresh;  // ground truth
    fresh.refactor_period = 1;
    SimplexOptions lazy;  // maximal eta accumulation
    lazy.refactor_period = 100'000;

    const Solution a = SimplexSolver(fresh).solve(p);
    const Solution b = SimplexSolver(lazy).solve(p);
    ASSERT_TRUE(a.optimal()) << "seed " << seed;
    ASSERT_TRUE(b.optimal()) << "seed " << seed;
    // 1e-6 relative: the LpCertificate duality-gap tolerance.
    const double scale = 1.0 + std::fabs(a.objective);
    EXPECT_NEAR(a.objective, b.objective, 1e-6 * scale) << "seed " << seed;
    EXPECT_LE(p.max_violation(b.x), 1e-7) << "seed " << seed;
  }
}

TEST(BasisKernelStress, TinyRefactorPeriodMatchesDenseKernel) {
  // Early-refactorization path vs the dense comparator (the dense kernel
  // rebuilds on the same schedule): the LU kernel's per-pivot
  // refactorization must not change the answer.
  mecsched::Rng rng(2027);
  const Problem p = hta_shaped_lp(rng, 30, 4);
  SimplexOptions lu = with_kernel(BasisKernel::kEtaLu);
  lu.refactor_period = 1;
  SimplexOptions dense = with_kernel(BasisKernel::kDenseInverse);
  const Solution a = SimplexSolver(lu).solve(p);
  const Solution b = SimplexSolver(dense).solve(p);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  const double scale = 1.0 + std::fabs(b.objective);
  EXPECT_NEAR(a.objective, b.objective, 1e-7 * scale);
}

}  // namespace
}  // namespace mecsched::lp
