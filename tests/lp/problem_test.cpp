#include "lp/problem.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "lp/standard_form.h"

namespace mecsched::lp {
namespace {

TEST(ProblemTest, BuildsVariablesAndConstraints) {
  Problem p;
  const auto x = p.add_variable(2.0, 0.0, 1.0, "x");
  const auto y = p.add_variable(-1.0, 0.0, kInfinity, "y");
  EXPECT_EQ(x, 0u);
  EXPECT_EQ(y, 1u);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 4.0, "c0");
  EXPECT_EQ(p.num_variables(), 2u);
  EXPECT_EQ(p.num_constraints(), 1u);
  EXPECT_DOUBLE_EQ(p.cost(x), 2.0);
  EXPECT_DOUBLE_EQ(p.upper(y), kInfinity);
  EXPECT_EQ(p.variable_name(0), "x");
  EXPECT_EQ(p.constraint(0).name, "c0");
}

TEST(ProblemTest, RejectsBadBoundsAndIndices) {
  Problem p;
  EXPECT_THROW(p.add_variable(0.0, 1.0, 0.0), ModelError);   // lo > hi
  EXPECT_THROW(p.add_variable(0.0, kInfinity, kInfinity), ModelError);
  p.add_variable(0.0, 0.0, 1.0);
  EXPECT_THROW(p.add_constraint({{5, 1.0}}, Relation::kEqual, 0.0), ModelError);
  EXPECT_THROW(p.add_constraint({{0, 1.0}, {0, 2.0}}, Relation::kEqual, 0.0),
               ModelError);  // duplicate variable
}

TEST(ProblemTest, ObjectiveValue) {
  Problem p;
  p.add_variable(3.0, 0.0, 10.0);
  p.add_variable(-2.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(p.objective_value({1.0, 2.0}), -1.0);
}

TEST(ProblemTest, MaxViolationFlagsEachConstraintKind) {
  Problem p;
  const auto x = p.add_variable(0.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 0.5);
  EXPECT_DOUBLE_EQ(p.max_violation({0.3}), 0.0);
  EXPECT_NEAR(p.max_violation({0.8}), 0.3, 1e-12);

  Problem q;
  const auto z = q.add_variable(0.0, 0.0, 1.0);
  q.add_constraint({{z, 1.0}}, Relation::kGreaterEqual, 0.5);
  EXPECT_NEAR(q.max_violation({0.2}), 0.3, 1e-12);

  Problem r;
  const auto w = r.add_variable(0.0, 0.0, 1.0);
  r.add_constraint({{w, 1.0}}, Relation::kEqual, 0.5);
  EXPECT_NEAR(r.max_violation({0.8}), 0.3, 1e-12);
  // bound violation
  EXPECT_NEAR(r.max_violation({1.4}), 0.9, 1e-12);
}

TEST(StandardFormTest, ShiftsLowerBounds) {
  Problem p;
  const auto x = p.add_variable(2.0, 3.0, 5.0);  // x in [3,5]
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  const StandardForm sf = to_standard_form(p);
  // x' = x - 3 in [0, 2]; row becomes x' + slack = 1; ub row x' + s = 2.
  EXPECT_EQ(sf.n_original, 1u);
  EXPECT_DOUBLE_EQ(sf.objective_offset, 6.0);
  EXPECT_DOUBLE_EQ(sf.b[0], 1.0);
  // one original row + one upper-bound row
  EXPECT_EQ(sf.a.rows(), 2u);
  const auto rec = sf.recover({0.5, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(rec[0], 3.5);
}

TEST(StandardFormTest, GreaterEqualGetsSurplus) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  const StandardForm sf = to_standard_form(p);
  EXPECT_EQ(sf.a.rows(), 1u);   // no upper-bound rows
  EXPECT_EQ(sf.a.cols(), 2u);   // x + surplus
  EXPECT_DOUBLE_EQ(sf.a(0, 1), -1.0);
}

TEST(StandardFormTest, StandardSolutionSatisfiesOriginal) {
  Problem p;
  const auto x = p.add_variable(1.0, 1.0, 4.0);
  const auto y = p.add_variable(1.0, 0.0, kInfinity);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 5.0);
  const StandardForm sf = to_standard_form(p);
  // pick x' = 2 (x = 3), y = 2 -> equality row holds: check via recover +
  // max_violation
  std::vector<double> std_x(sf.a.cols(), 0.0);
  std_x[0] = 2.0;  // x' = x - 1
  std_x[1] = 2.0;  // y
  // remaining columns are slacks; compute the ub slack for x: 3 - x' = 1
  // (layout: [x, y, ub-slack(x)])
  std_x[2] = 1.0;
  const auto rec = sf.recover(std_x);
  EXPECT_DOUBLE_EQ(p.max_violation(rec), 0.0);
  // and A std_x == b
  const auto ax = sf.a.multiply(std_x);
  for (std::size_t r = 0; r < sf.b.size(); ++r) {
    EXPECT_NEAR(ax[r], sf.b[r], 1e-12);
  }
}

}  // namespace
}  // namespace mecsched::lp
