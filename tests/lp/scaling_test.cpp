#include "lp/scaling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lp/simplex.h"

namespace mecsched::lp {
namespace {

TEST(ScalingTest, IdentityOnWellScaledProblem) {
  Problem p;
  const auto x = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, 1.0);
  const ScaledProblem sp = equilibrate(p);
  EXPECT_NEAR(sp.row_scale()[0], 1.0, 1e-12);
  EXPECT_NEAR(sp.col_scale()[0], 1.0, 1e-12);
}

TEST(ScalingTest, CoefficientsPulledTowardOne) {
  Problem p;
  const auto x = p.add_variable(1e-6, 0.0, kInfinity);
  const auto y = p.add_variable(1e6, 0.0, kInfinity);
  p.add_constraint({{x, 1e8}, {y, 1e-8}}, Relation::kLessEqual, 1.0);
  p.add_constraint({{x, 1e4}, {y, 1e-2}}, Relation::kGreaterEqual, 1e-3);
  const ScaledProblem sp = equilibrate(p);
  double worst = 0.0;
  for (std::size_t r = 0; r < sp.problem().num_constraints(); ++r) {
    for (const Term& t : sp.problem().constraint(r).terms) {
      worst = std::max(worst, std::fabs(std::log10(std::fabs(t.coeff))));
    }
  }
  // original spread is 16 orders of magnitude; scaled should be tiny
  EXPECT_LT(worst, 3.0);
}

TEST(ScalingTest, ObjectiveAndSolutionPreserved) {
  // Badly scaled version of a simple LP whose answer we know.
  // min 1e-6*u + 1e6*v  s.t. 1e6*u + 1e-6*v >= 2, u,v >= 0
  // substitute u = U*1e-6... simplest: check scaled-solved == direct-solved.
  Problem p;
  const auto u = p.add_variable(1e-6, 0.0, kInfinity);
  const auto v = p.add_variable(1e6, 0.0, kInfinity);
  p.add_constraint({{u, 1e6}, {v, 1e-6}}, Relation::kGreaterEqual, 2.0);

  const SimplexSolver solver;
  const Solution direct = solver.solve(p);
  const ScaledProblem sp = equilibrate(p);
  const Solution restored = sp.unscale(solver.solve(sp.problem()), p);

  ASSERT_TRUE(direct.optimal());
  ASSERT_TRUE(restored.optimal());
  EXPECT_NEAR(direct.objective, restored.objective,
              1e-9 * (1.0 + std::fabs(direct.objective)));
  EXPECT_LE(p.max_violation(restored.x), 1e-9);
}

TEST(ScalingTest, DualsUnscaleCorrectly) {
  // max 3x+5y form from the duality test, rows multiplied by wild factors.
  Problem p;
  const auto x = p.add_variable(-3.0, 0.0, kInfinity);
  const auto y = p.add_variable(-5.0, 0.0, kInfinity);
  p.add_constraint({{x, 1e5}}, Relation::kLessEqual, 4e5);
  p.add_constraint({{y, 2e-5}}, Relation::kLessEqual, 12e-5);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);

  const SimplexSolver solver;
  const ScaledProblem sp = equilibrate(p);
  const Solution restored = sp.unscale(solver.solve(sp.problem()), p);
  ASSERT_TRUE(restored.optimal());
  // strong duality in original units: c'x == b'y
  double by = 0.0;
  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    by += p.constraint(r).rhs * restored.duals[r];
  }
  EXPECT_NEAR(restored.objective, by, 1e-6 * (1.0 + std::fabs(by)));
}

class ScalingEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ScalingEquivalence, RandomBadlyScaledLpsMatchDirectSolve) {
  mecsched::Rng rng(static_cast<std::uint64_t>(GetParam()) * 401 + 19);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 10));
  Problem p;
  std::vector<double> x0(n);
  std::vector<double> col_mag(n);
  for (std::size_t i = 0; i < n; ++i) {
    col_mag[i] = std::pow(10.0, rng.uniform(-5.0, 5.0));
    const double ub = rng.uniform(0.5, 2.0) / col_mag[i];
    p.add_variable(rng.uniform(0.1, 3.0) * col_mag[i], 0.0, ub);
    x0[i] = rng.uniform(0.0, ub);
  }
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 6));
  for (std::size_t r = 0; r < m; ++r) {
    const double row_mag = std::pow(10.0, rng.uniform(-4.0, 4.0));
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(0.6)) continue;
      const double c = rng.uniform(0.1, 2.0) * row_mag * col_mag[i];
      terms.push_back({i, c});
      lhs += c * x0[i];
    }
    if (terms.empty()) continue;
    p.add_constraint(std::move(terms), Relation::kLessEqual,
                     lhs + rng.uniform(0.1, 1.0) * row_mag);
  }

  const SimplexSolver solver;
  const Solution direct = solver.solve(p);
  const ScaledProblem sp = equilibrate(p);
  const Solution restored = sp.unscale(solver.solve(sp.problem()), p);
  ASSERT_TRUE(direct.optimal()) << "seed " << GetParam();
  ASSERT_TRUE(restored.optimal()) << "seed " << GetParam();
  EXPECT_NEAR(direct.objective, restored.objective,
              1e-6 * (1.0 + std::fabs(direct.objective)))
      << "seed " << GetParam();
  EXPECT_LE(p.max_violation(restored.x),
            1e-6 * (1.0 + std::fabs(direct.objective)));
}

INSTANTIATE_TEST_SUITE_P(Random, ScalingEquivalence, ::testing::Range(0, 25));

TEST(ScalingTest, NonOptimalStatusPassesThrough) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  const ScaledProblem sp = equilibrate(p);
  Solution limit;
  limit.status = SolveStatus::kIterationLimit;
  EXPECT_EQ(sp.unscale(limit, p).status, SolveStatus::kIterationLimit);
}

}  // namespace
}  // namespace mecsched::lp
