#include "audit/assignment_audit.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "assign/baselines.h"
#include "assign/hta_instance.h"
#include "audit/audit.h"
#include "workload/scenario.h"

namespace mecsched::audit {
namespace {

workload::Scenario small_scenario(std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.num_tasks = 16;
  cfg.num_devices = 6;
  cfg.num_base_stations = 2;
  cfg.seed = seed;
  return workload::make_scenario(cfg);
}

assign::Assignment all_cancelled(std::size_t n) {
  assign::Assignment a;
  a.decisions.assign(n, assign::Decision::kCancelled);
  return a;
}

std::string constraint_of(const assign::HtaInstance& instance,
                          const assign::Assignment& plan,
                          const AssignmentContract& contract) {
  try {
    check_assignment(instance, plan, contract, "test");
  } catch (const AuditError& e) {
    EXPECT_EQ(e.component(), "assign");
    return e.constraint();
  }
  return "";
}

TEST(AssignmentAuditTest, FeasiblePlanPassesAtFull) {
  const ScopedLevel scope(Level::kFull);
  const workload::Scenario s = small_scenario(3);
  const assign::HtaInstance instance(s.topology, s.tasks);
  const assign::Assignment plan = assign::LocalFirst().assign(instance);
  EXPECT_NO_THROW(check_assignment(
      instance, plan, {.deadlines = true, .capacity = true}, "test"));
}

TEST(AssignmentAuditTest, DeadlineMissedByEpsilonTripsC1) {
  const ScopedLevel scope(Level::kCheap);
  const workload::Scenario s = small_scenario(4);
  // Shrink task 0's deadline to epsilon below its local latency, then
  // claim a local placement for it: C1 is violated by exactly epsilon.
  const assign::HtaInstance probe(s.topology, s.tasks);
  auto tasks = s.tasks;
  tasks[0].deadline_s = probe.latency(0, mec::Placement::kLocal) - 1e-6;
  const assign::HtaInstance instance(s.topology, tasks);
  ASSERT_FALSE(instance.meets_deadline(0, mec::Placement::kLocal));

  assign::Assignment plan = all_cancelled(instance.num_tasks());
  plan.decisions[0] = assign::Decision::kLocal;
  EXPECT_EQ(constraint_of(instance, plan, {.deadlines = true, .capacity = true}),
            "C1:deadline:task=0");
  // A deadline-free contract (HGOS/baselines) accepts the same plan: late
  // tasks are the measured unsatisfied rate there, not a bug.
  EXPECT_EQ(
      constraint_of(instance, plan, {.deadlines = false, .capacity = true}),
      "");
}

TEST(AssignmentAuditTest, DeviceOverloadTripsC2) {
  const ScopedLevel scope(Level::kCheap);
  const workload::Scenario s = small_scenario(5);
  auto tasks = s.tasks;
  const std::size_t owner = tasks[0].id.user;
  tasks[0].resource = s.topology.device(owner).max_resource * 2.0;
  const assign::HtaInstance instance(s.topology, tasks);

  assign::Assignment plan = all_cancelled(instance.num_tasks());
  plan.decisions[0] = assign::Decision::kLocal;
  EXPECT_EQ(
      constraint_of(instance, plan, {.deadlines = false, .capacity = true}),
      "C2:device=" + std::to_string(owner));
}

TEST(AssignmentAuditTest, StationOverloadTripsC3) {
  const ScopedLevel scope(Level::kCheap);
  const workload::Scenario s = small_scenario(6);
  auto tasks = s.tasks;
  const std::size_t owner = tasks[0].id.user;
  const std::size_t station = s.topology.device(owner).base_station;
  tasks[0].resource = s.topology.base_station(station).max_resource * 2.0;
  const assign::HtaInstance instance(s.topology, tasks);

  assign::Assignment plan = all_cancelled(instance.num_tasks());
  plan.decisions[0] = assign::Decision::kEdge;
  EXPECT_EQ(
      constraint_of(instance, plan, {.deadlines = false, .capacity = true}),
      "C3:station=" + std::to_string(station));
}

TEST(AssignmentAuditTest, WrongPlanSizeTripsShape) {
  const ScopedLevel scope(Level::kCheap);
  const workload::Scenario s = small_scenario(7);
  const assign::HtaInstance instance(s.topology, s.tasks);
  const assign::Assignment plan = all_cancelled(instance.num_tasks() - 1);
  EXPECT_EQ(
      constraint_of(instance, plan, {.deadlines = false, .capacity = true}),
      "shape:size");
}

TEST(AssignmentAuditTest, OffLevelIsANoOpEvenOnGarbage) {
  const ScopedLevel scope(Level::kOff);
  const workload::Scenario s = small_scenario(8);
  const assign::HtaInstance instance(s.topology, s.tasks);
  const assign::Assignment plan = all_cancelled(instance.num_tasks() - 1);
  EXPECT_NO_THROW(check_assignment(
      instance, plan, {.deadlines = true, .capacity = true}, "test"));
}

}  // namespace
}  // namespace mecsched::audit
