#include "audit/division_audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "dta/pipeline.h"
#include "workload/shared_data.h"

namespace mecsched::audit {
namespace {

dta::SharedDataScenario scenario_with_sharing(std::uint64_t seed) {
  workload::SharedDataConfig cfg;
  cfg.seed = seed;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  cfg.num_tasks = 15;
  cfg.num_items = 60;
  return workload::make_shared_scenario(cfg);
}

std::string constraint_of(const dta::SharedDataScenario& scenario,
                          const dta::Coverage& coverage,
                          const std::vector<mec::Task>& rearranged) {
  try {
    check_division(scenario, coverage, rearranged, "test");
  } catch (const AuditError& e) {
    EXPECT_EQ(e.component(), "dta");
    return e.constraint();
  }
  return "";
}

// Device (index into coverage) whose share contains `item`, or npos.
std::size_t holder_of(const dta::Coverage& coverage, std::size_t item) {
  for (std::size_t dev = 0; dev < coverage.assigned.size(); ++dev) {
    const dta::ItemSet& share = coverage.assigned[dev];
    if (std::binary_search(share.begin(), share.end(), item)) return dev;
  }
  return static_cast<std::size_t>(-1);
}

void sorted_insert(dta::ItemSet& share, std::size_t item) {
  share.insert(std::lower_bound(share.begin(), share.end(), item), item);
}

TEST(DivisionAuditTest, PipelineOutputPassesAtFull) {
  const ScopedLevel scope(Level::kFull);
  const auto scenario = scenario_with_sharing(1);
  const dta::DtaResult r = dta::run_dta(scenario);
  EXPECT_NO_THROW(check_division(scenario, r.coverage, r.rearranged, "test"));
}

TEST(DivisionAuditTest, DroppedItemTripsUncovered) {
  const ScopedLevel scope(Level::kCheap);
  const auto scenario = scenario_with_sharing(2);
  dta::DtaResult r = dta::run_dta(scenario);
  const dta::ItemSet needed = scenario.required_items();
  ASSERT_FALSE(needed.empty());
  const std::size_t item = needed.front();
  const std::size_t dev = holder_of(r.coverage, item);
  ASSERT_NE(dev, static_cast<std::size_t>(-1));
  dta::ItemSet& share = r.coverage.assigned[dev];
  share.erase(std::find(share.begin(), share.end(), item));
  EXPECT_EQ(constraint_of(scenario, r.coverage, {}),
            "coverage:uncovered:item=" + std::to_string(item));
}

TEST(DivisionAuditTest, DoublyCoveredItemTripsDuplicate) {
  const ScopedLevel scope(Level::kCheap);
  const auto scenario = scenario_with_sharing(3);
  dta::DtaResult r = dta::run_dta(scenario);
  // Find a needed item replicated on a second device (data sharing is the
  // generator's whole point, so one must exist) and cover it twice.
  const dta::ItemSet needed = scenario.required_items();
  std::size_t item = static_cast<std::size_t>(-1);
  std::size_t second = static_cast<std::size_t>(-1);
  for (const std::size_t candidate : needed) {
    const std::size_t assigned_dev = holder_of(r.coverage, candidate);
    for (std::size_t dev = 0; dev < scenario.ownership.size(); ++dev) {
      if (dev == assigned_dev) continue;
      const dta::ItemSet& owned = scenario.ownership[dev];
      if (std::binary_search(owned.begin(), owned.end(), candidate)) {
        item = candidate;
        second = dev;
        break;
      }
    }
    if (item != static_cast<std::size_t>(-1)) break;
  }
  ASSERT_NE(item, static_cast<std::size_t>(-1))
      << "generator produced no replicated item";
  sorted_insert(r.coverage.assigned[second], item);
  EXPECT_EQ(constraint_of(scenario, r.coverage, {}),
            "coverage:duplicate:item=" + std::to_string(item));
}

TEST(DivisionAuditTest, AssigningAnUnownedItemTripsOwnership) {
  const ScopedLevel scope(Level::kCheap);
  const auto scenario = scenario_with_sharing(4);
  dta::DtaResult r = dta::run_dta(scenario);
  // Give some device an item it does not own (dropping it from its current
  // holder so the ownership leak fires before any coverage miscount).
  const dta::ItemSet needed = scenario.required_items();
  std::size_t item = static_cast<std::size_t>(-1);
  std::size_t thief = static_cast<std::size_t>(-1);
  for (const std::size_t candidate : needed) {
    for (std::size_t dev = 0; dev < scenario.ownership.size(); ++dev) {
      const dta::ItemSet& owned = scenario.ownership[dev];
      if (!std::binary_search(owned.begin(), owned.end(), candidate)) {
        item = candidate;
        thief = dev;
        break;
      }
    }
    if (item != static_cast<std::size_t>(-1)) break;
  }
  ASSERT_NE(item, static_cast<std::size_t>(-1));
  const std::size_t holder = holder_of(r.coverage, item);
  ASSERT_NE(holder, static_cast<std::size_t>(-1));
  dta::ItemSet& share = r.coverage.assigned[holder];
  share.erase(std::find(share.begin(), share.end(), item));
  sorted_insert(r.coverage.assigned[thief], item);
  EXPECT_EQ(constraint_of(scenario, r.coverage, {}),
            "ownership:device=" + std::to_string(thief));
}

TEST(DivisionAuditTest, TamperedPartialTripsRearrangeAtFull) {
  const ScopedLevel scope(Level::kFull);
  const auto scenario = scenario_with_sharing(5);
  dta::DtaResult r = dta::run_dta(scenario);
  ASSERT_FALSE(r.rearranged.empty());
  r.rearranged[0].local_bytes += 1.0;
  const std::string c = constraint_of(scenario, r.coverage, r.rearranged);
  EXPECT_EQ(c.rfind("rearrange:partial", 0), 0u) << c;
  // At cheap the aggregation re-derivation is skipped by design.
  const ScopedLevel cheap(Level::kCheap);
  EXPECT_NO_THROW(check_division(scenario, r.coverage, r.rearranged, "test"));
}

TEST(DivisionAuditTest, MissingPartialTripsRearrangeCountAtFull) {
  const ScopedLevel scope(Level::kFull);
  const auto scenario = scenario_with_sharing(6);
  dta::DtaResult r = dta::run_dta(scenario);
  ASSERT_FALSE(r.rearranged.empty());
  r.rearranged.pop_back();
  const std::string c = constraint_of(scenario, r.coverage, r.rearranged);
  EXPECT_EQ(c, "rearrange:missing");
}

}  // namespace
}  // namespace mecsched::audit
