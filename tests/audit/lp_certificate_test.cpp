#include "audit/lp_certificate.h"

#include <gtest/gtest.h>

#include <string>

#include "audit/audit.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace mecsched::audit {
namespace {

// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 — optimum (2, 6).
lp::Problem classic() {
  lp::Problem p;
  const auto x = p.add_variable(-3.0, 0.0, lp::kInfinity);
  const auto y = p.add_variable(-5.0, 0.0, lp::kInfinity);
  p.add_constraint({{x, 1.0}}, lp::Relation::kLessEqual, 4.0);
  p.add_constraint({{y, 2.0}}, lp::Relation::kLessEqual, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, lp::Relation::kLessEqual, 18.0);
  return p;
}

std::string constraint_of(const lp::Problem& p, const lp::Solution& s,
                          LpCertificateOptions options = {}) {
  try {
    check_lp(p, s, "test", options);
  } catch (const AuditError& e) {
    EXPECT_EQ(e.component(), "lp");
    return e.constraint();
  }
  return "";
}

TEST(LpCertificateTest, GenuineSimplexSolutionPassesAtFull) {
  const ScopedLevel scope(Level::kFull);
  const lp::Problem p = classic();
  const lp::Solution s = lp::SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  LpCertificateOptions options;
  options.vertex_expected = true;
  EXPECT_NO_THROW(check_lp(p, s, "test", options));
}

TEST(LpCertificateTest, CorruptedPrimalTripsFeasibility) {
  const ScopedLevel scope(Level::kCheap);
  const lp::Problem p = classic();
  lp::Solution s = lp::SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  s.x[0] = 10.0;  // violates x <= 4 and row 3
  EXPECT_EQ(constraint_of(p, s), "primal:feasibility");
}

TEST(LpCertificateTest, MisreportedObjectiveTripsIntegrity) {
  const ScopedLevel scope(Level::kCheap);
  const lp::Problem p = classic();
  lp::Solution s = lp::SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  s.objective -= 1.0;  // claims a better value than c'x delivers
  EXPECT_EQ(constraint_of(p, s), "primal:objective");
}

TEST(LpCertificateTest, WrongSignDualTripsSignFeasibility) {
  const ScopedLevel scope(Level::kFull);
  const lp::Problem p = classic();
  lp::Solution s = lp::SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  ASSERT_EQ(s.duals.size(), 3u);
  s.duals[1] = 2.0;  // a "<=" row must have y <= 0 under minimization
  EXPECT_EQ(constraint_of(p, s), "dual:sign:row=1");
}

TEST(LpCertificateTest, PerturbedDualTripsTheGap) {
  const ScopedLevel scope(Level::kFull);
  const lp::Problem p = classic();
  lp::Solution s = lp::SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  // Sign-feasible (more negative) but no longer complementary: the dual
  // objective drifts away from c'x and weak duality catches it.
  s.duals[0] -= 1.0;
  EXPECT_EQ(constraint_of(p, s), "dual:gap");
}

TEST(LpCertificateTest, TruncatedDualVectorTripsShape) {
  const ScopedLevel scope(Level::kFull);
  const lp::Problem p = classic();
  lp::Solution s = lp::SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  s.duals.pop_back();
  EXPECT_EQ(constraint_of(p, s), "shape:duals");
}

TEST(LpCertificateTest, InteriorPointMasqueradingAsVertexTripsBasis) {
  const ScopedLevel scope(Level::kFull);
  // Zero objective, one row: any interior point is optimal, but a simplex
  // solution must sit on a vertex (<= 1 variable strictly between bounds).
  lp::Problem p;
  for (int i = 0; i < 3; ++i) p.add_variable(0.0, 0.0, 4.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, lp::Relation::kLessEqual,
                   10.0);
  lp::Solution s;
  s.status = lp::SolveStatus::kOptimal;
  s.x = {1.0, 1.0, 1.0};
  s.objective = 0.0;
  s.duals = {0.0};
  LpCertificateOptions options;
  options.vertex_expected = true;
  EXPECT_EQ(constraint_of(p, s, options), "basis:vertex");
  // The same point is fine for an engine with no vertex claim (IPM).
  EXPECT_NO_THROW(check_lp(p, s, "test", {}));
}

TEST(LpCertificateTest, OffLevelIsANoOpEvenOnGarbage) {
  const ScopedLevel scope(Level::kOff);
  const lp::Problem p = classic();
  lp::Solution s = lp::SimplexSolver().solve(p);
  s.x[0] = 1e9;
  s.objective = -1e9;
  EXPECT_NO_THROW(check_lp(p, s, "test", {}));
}

TEST(LpCertificateTest, NonOptimalStatusesCarryNoClaim) {
  const ScopedLevel scope(Level::kFull);
  const lp::Problem p = classic();
  lp::Solution s;
  s.status = lp::SolveStatus::kInfeasible;
  EXPECT_NO_THROW(check_lp(p, s, "test", {}));
}

}  // namespace
}  // namespace mecsched::audit
