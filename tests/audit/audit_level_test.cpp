#include "audit/audit.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mecsched::audit {
namespace {

TEST(AuditLevelTest, ParseAcceptsNamesAndDigits) {
  EXPECT_EQ(parse_level("off"), Level::kOff);
  EXPECT_EQ(parse_level("cheap"), Level::kCheap);
  EXPECT_EQ(parse_level("full"), Level::kFull);
  EXPECT_EQ(parse_level("0"), Level::kOff);
  EXPECT_EQ(parse_level("1"), Level::kCheap);
  EXPECT_EQ(parse_level("2"), Level::kFull);
}

TEST(AuditLevelTest, ParseRejectsGarbage) {
  EXPECT_THROW(parse_level(""), ModelError);
  EXPECT_THROW(parse_level("verbose"), ModelError);
  EXPECT_THROW(parse_level("3"), ModelError);
}

TEST(AuditLevelTest, ToStringRoundTrips) {
  for (Level l : {Level::kOff, Level::kCheap, Level::kFull}) {
    EXPECT_EQ(parse_level(to_string(l)), l);
  }
}

TEST(AuditLevelTest, EnabledIsMonotoneInTheLevel) {
  const ScopedLevel scope(Level::kCheap);
  EXPECT_TRUE(enabled(Level::kOff));
  EXPECT_TRUE(enabled(Level::kCheap));
  EXPECT_FALSE(enabled(Level::kFull));
}

TEST(AuditLevelTest, ScopedLevelRestoresOnExit) {
  const Level before = level();
  {
    const ScopedLevel scope(Level::kFull);
    EXPECT_EQ(level(), Level::kFull);
    {
      const ScopedLevel inner(Level::kOff);
      EXPECT_EQ(level(), Level::kOff);
    }
    EXPECT_EQ(level(), Level::kFull);
  }
  EXPECT_EQ(level(), before);
}

TEST(AuditLevelTest, FailThrowsStructuredError) {
  try {
    fail("lp", "primal:row=3", 0.25, "row 3 violated by 0.25");
    FAIL() << "fail() must throw";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.component(), "lp");
    EXPECT_EQ(e.constraint(), "primal:row=3");
    EXPECT_DOUBLE_EQ(e.violation(), 0.25);
    EXPECT_NE(std::string(e.what()).find("primal:row=3"), std::string::npos);
  }
}

TEST(AuditLevelTest, AuditErrorIsNotASolverError) {
  // The fallback/portfolio layers retry SolverError; a certificate
  // violation must never be mistaken for one.
  try {
    fail("assign", "C1:deadline:task=0", 1.0, "late");
    FAIL() << "fail() must throw";
  } catch (const SolverError&) {
    FAIL() << "AuditError must not derive from SolverError";
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace mecsched::audit
