#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "io/json.h"
#include "obs/export.h"

namespace mecsched::obs {
namespace {

// The recorder is a process-wide singleton; every test starts from a
// clean, enabled state and disables on the way out so the rest of the
// suite sees the cheap default.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().clear();
    FlightRecorder::global().enable();
  }
  void TearDown() override {
    FlightRecorder::global().disable();
    FlightRecorder::global().clear();
  }
};

SolveRecord make_record(const std::string& status, double seconds) {
  SolveRecord r;
  r.layer = "lp";
  r.engine = "simplex";
  r.status = status;
  r.seconds = seconds;
  return r;
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsNothingAndStoresNothing) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.disable();
  flight.record(make_record("ok", 1.0));
  EXPECT_EQ(flight.recorded(), 0u);
  EXPECT_EQ(flight.dropped(), 0u);
  EXPECT_TRUE(flight.snapshot().empty());
}

TEST_F(FlightRecorderTest, SnapshotIsInRecordOrder) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.record(make_record("ok", 1.0));
  flight.record(make_record("error", 2.0));
  flight.record(make_record("deadline", 3.0));
  const std::vector<SolveRecord> records = flight.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_LT(records[0].seq, records[1].seq);
  EXPECT_LT(records[1].seq, records[2].seq);
  EXPECT_EQ(records[0].status, "ok");
  EXPECT_EQ(records[2].status, "deadline");
}

TEST_F(FlightRecorderTest, RingOverflowCountsDrops) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.disable();
  flight.clear();
  flight.enable(/*capacity_per_shard=*/4);
  // Single thread -> single shard: the 5th record evicts the 1st.
  for (int i = 0; i < 5; ++i) flight.record(make_record("ok", i * 1.0));
  EXPECT_EQ(flight.recorded(), 5u);
  EXPECT_EQ(flight.dropped(), 1u);
  const std::vector<SolveRecord> records = flight.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().seq, 1u);  // seq 0 was overwritten
}

TEST_F(FlightRecorderTest, ResidualMsIsNaNForUnlimitedDeadline) {
  EXPECT_TRUE(std::isnan(FlightRecorder::residual_ms(Deadline{})));
  const Deadline d = Deadline::after_ms(1e6);
  const double residual = FlightRecorder::residual_ms(d);
  EXPECT_TRUE(std::isfinite(residual));
  EXPECT_GT(residual, 0.0);
}

TEST_F(FlightRecorderTest, JsonlRoundTripsThroughTheJsonParser) {
  FlightRecorder& flight = FlightRecorder::global();
  SolveRecord r = make_record("audit-error", 0.25);
  r.detail = "ipm said \"stalled\"\n";  // needs escaping
  r.iterations = 42;
  r.deadline_hit = true;
  r.chaos_hits = 2;
  r.audit = "objective mismatch";
  flight.record(std::move(r));
  flight.record(make_record("ok", 0.5));

  const std::string jsonl = to_flight_jsonl(flight);
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = jsonl.find('\n'); nl != std::string::npos;
       nl = jsonl.find('\n', start)) {
    lines.push_back(jsonl.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);

  const io::Json first = io::Json::parse(lines[0]);
  EXPECT_EQ(first.at("layer").as_string(), "lp");
  EXPECT_EQ(first.at("status").as_string(), "audit-error");
  EXPECT_EQ(first.at("detail").as_string(), "ipm said \"stalled\"\n");
  EXPECT_DOUBLE_EQ(first.at("iterations").as_number(), 42.0);
  EXPECT_TRUE(first.at("deadline_hit").as_bool());
  EXPECT_DOUBLE_EQ(first.at("chaos_hits").as_number(), 2.0);
  // NaN residual serializes as null, not as invalid JSON.
  EXPECT_TRUE(first.at("deadline_residual_ms").is_null());
  EXPECT_EQ(io::Json::parse(lines[1]).at("status").as_string(), "ok");
}

TEST_F(FlightRecorderTest, ConcurrentRecordsAllLand) {
  FlightRecorder& flight = FlightRecorder::global();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&flight] {
      for (int i = 0; i < kPerThread; ++i) {
        flight.record(SolveRecord{});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(flight.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<SolveRecord> records = flight.snapshot();
  EXPECT_EQ(records.size() + flight.dropped(), flight.recorded());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].seq, records[i].seq);  // strictly ordered
  }
}

TEST_F(FlightRecorderTest, ClearResetsSequenceNumbers) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.record(make_record("ok", 1.0));
  flight.clear();
  EXPECT_EQ(flight.recorded(), 0u);
  flight.enable();
  flight.record(make_record("ok", 2.0));
  const std::vector<SolveRecord> records = flight.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 0u);
}

}  // namespace
}  // namespace mecsched::obs
