#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace mecsched::obs {
namespace {

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.begin("a", "cat");
  t.end("a", "cat");
  t.instant("b", "cat");
  t.complete("c", "cat", 0, 10);
  EXPECT_TRUE(t.snapshot().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, CapturesSpansAndInstants) {
  Tracer t;
  t.enable();
  t.begin("solve", "lp");
  t.instant("pivot", "lp", "\"col\":3");
  t.end("solve", "lp");
  t.complete("round", "assign", 5, 17);
  t.disable();

  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "solve");
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[1].phase, Phase::kInstant);
  EXPECT_EQ(events[1].args_json, "\"col\":3");
  EXPECT_EQ(events[2].phase, Phase::kEnd);
  EXPECT_EQ(events[3].phase, Phase::kComplete);
  EXPECT_EQ(events[3].ts_us, 5);
  EXPECT_EQ(events[3].dur_us, 17);
  EXPECT_LE(events[0].ts_us, events[2].ts_us);  // monotone within a thread
}

TEST(TracerTest, RingWrapsOldestFirstAndCountsDrops) {
  Tracer t;
  t.enable(4);
  for (int i = 0; i < 10; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    t.instant(name, "cat");
  }
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // The surviving window is the newest four, oldest first.
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
}

TEST(TracerTest, DroppedEventsFeedTheGlobalCounter) {
  // Overflow is also surfaced as obs.tracer.dropped_events so a metrics
  // scrape (and the CLI's exit warning) can see it without the trace file.
  Counter& dropped =
      Registry::global().counter("obs.tracer.dropped_events");
  const std::uint64_t before = dropped.value();
  Tracer t;
  t.enable(2);
  for (int i = 0; i < 5; ++i) t.instant("x", "cat");
  EXPECT_EQ(t.dropped(), 3u);
  EXPECT_EQ(dropped.value(), before + 3u);
}

TEST(TracerTest, ReenableClearsPreviousCapture) {
  Tracer t;
  t.enable(4);
  for (int i = 0; i < 10; ++i) t.instant("x", "cat");
  t.enable(8);
  EXPECT_TRUE(t.snapshot().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, ConcurrentRecordingKeepsEveryEventWithinCapacity) {
  Tracer t;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  t.enable(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < kPerThread; ++j) t.instant("tick", "test");
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(t.snapshot().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(t.dropped(), 0u);

  std::set<std::uint64_t> tids;
  for (const TraceEvent& ev : t.snapshot()) tids.insert(ev.tid);
  EXPECT_GE(tids.size(), 2u);  // events carry distinct thread ids
}

// ScopedTimer always lands in the registry histogram; the trace event is
// emitted only when the global tracer is enabled at construction.
TEST(ScopedTimerTest, FeedsHistogramAlwaysAndTraceWhenEnabled) {
  Registry& reg = Registry::global();
  Tracer& tracer = Tracer::global();
  tracer.disable();
  reg.reset();

  const std::size_t before = reg.histogram("timer.test.seconds").summary().count();
  { const ScopedTimer timer("timer.test", "test"); }
  EXPECT_EQ(reg.histogram("timer.test.seconds").summary().count(), before + 1);

  tracer.enable(16);
  {
    const ScopedTimer timer("timer.test", "test", "\"k\":1");
    EXPECT_GE(timer.elapsed_s(), 0.0);
  }
  const std::vector<TraceEvent> events = tracer.snapshot();
  tracer.disable();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "timer.test");
  EXPECT_EQ(events[0].phase, Phase::kComplete);
  EXPECT_GE(events[0].dur_us, 0);
  EXPECT_EQ(events[0].args_json, "\"k\":1");
  EXPECT_EQ(reg.histogram("timer.test.seconds").summary().count(), before + 2);
}

}  // namespace
}  // namespace mecsched::obs
