// The exporters' outputs are contracts with external tools: the Chrome
// trace must parse as JSON (Perfetto refuses otherwise) and the Prometheus
// text must follow the exposition format. Parse the former with the repo's
// own io::Json to make well-formedness a hard assertion.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "io/json.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace mecsched::obs {
namespace {

TEST(ChromeExportTest, EmptyTracerIsValidJson) {
  Tracer t;
  const io::Json doc = io::Json::parse(to_chrome_json(t));
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped_events").as_number(), 0.0);
}

TEST(ChromeExportTest, EventsCarryPhaseTimestampAndArgs) {
  Tracer t;
  t.enable(16);
  t.complete("solve", "lp", 100, 250, "\"pivots\":12");
  t.instant("rung_failed", "control");
  t.disable();

  const io::Json doc = io::Json::parse(to_chrome_json(t));
  const io::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);

  const io::Json& complete = events[0];
  EXPECT_EQ(complete.at("name").as_string(), "solve");
  EXPECT_EQ(complete.at("cat").as_string(), "lp");
  EXPECT_EQ(complete.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(complete.at("ts").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(complete.at("dur").as_number(), 250.0);
  EXPECT_DOUBLE_EQ(complete.at("args").at("pivots").as_number(), 12.0);

  const io::Json& instant = events[1];
  EXPECT_EQ(instant.at("ph").as_string(), "i");
  EXPECT_EQ(instant.at("s").as_string(), "t");
  EXPECT_FALSE(instant.contains("dur"));
}

TEST(ChromeExportTest, EscapesHostileNames) {
  Tracer t;
  t.enable(4);
  t.instant("quote\" back\\slash\nnewline\ttab", "cat\r");
  t.disable();
  const io::Json doc = io::Json::parse(to_chrome_json(t));
  EXPECT_EQ(doc.at("traceEvents").as_array()[0].at("name").as_string(),
            "quote\" back\\slash\nnewline\ttab");
}

TEST(ChromeExportTest, ReportsDroppedEvents) {
  Tracer t;
  t.enable(2);
  for (int i = 0; i < 5; ++i) t.instant("x", "cat");
  t.disable();
  const io::Json doc = io::Json::parse(to_chrome_json(t));
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped_events").as_number(), 3.0);
}

TEST(PrometheusExportTest, RendersAllThreeKinds) {
  Registry reg;
  reg.counter("lp.simplex.pivots").add(42);
  reg.gauge("lp_hta.last_integrality_gap").set(0.125);
  reg.histogram("controller.epoch.seconds").observe(0.5);
  reg.histogram("controller.epoch.seconds").observe(2.0);

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE mecsched_lp_simplex_pivots_total counter\n"
                      "mecsched_lp_simplex_pivots_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mecsched_lp_hta_last_integrality_gap gauge\n"
                      "mecsched_lp_hta_last_integrality_gap 0.125\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE mecsched_controller_epoch_seconds histogram"),
      std::string::npos);
  EXPECT_NE(text.find("mecsched_controller_epoch_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("mecsched_controller_epoch_seconds_bucket{le=\"+Inf\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("mecsched_controller_epoch_seconds_sum 2.5"),
            std::string::npos);
  EXPECT_NE(text.find("mecsched_controller_epoch_seconds_count 2"),
            std::string::npos);
}

TEST(PrometheusExportTest, SparseKernelSeriesFormatCorrectly) {
  // The lp.sparse.* family mixes counters, gauges and a histogram; the
  // dotted names must sanitize to mecsched_lp_sparse_* with the _total
  // suffix only on counters.
  Registry reg;
  reg.counter("lp.sparse.ipm_solves").add(3);
  reg.counter("lp.sparse.pattern_cache_hits").add(17);
  reg.counter("lp.sparse.pattern_cache_misses").add();
  reg.gauge("lp.sparse.last_fill_ratio").set(1.25);
  reg.gauge("lp.sparse.last_factor_nnz").set(731);
  reg.histogram("lp.sparse.fill_ratio").observe(1.25);

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE mecsched_lp_sparse_ipm_solves_total counter\n"
                      "mecsched_lp_sparse_ipm_solves_total 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE mecsched_lp_sparse_pattern_cache_hits_total counter\n"
                "mecsched_lp_sparse_pattern_cache_hits_total 17\n"),
      std::string::npos);
  EXPECT_NE(text.find("mecsched_lp_sparse_pattern_cache_misses_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mecsched_lp_sparse_last_fill_ratio gauge\n"
                      "mecsched_lp_sparse_last_fill_ratio 1.25\n"),
            std::string::npos);
  EXPECT_NE(text.find("mecsched_lp_sparse_last_factor_nnz 731\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mecsched_lp_sparse_fill_ratio histogram"),
            std::string::npos);
  EXPECT_NE(text.find("mecsched_lp_sparse_fill_ratio_count 1"),
            std::string::npos);
  // Gauges must never grow a _total suffix.
  EXPECT_EQ(text.find("mecsched_lp_sparse_last_fill_ratio_total"),
            std::string::npos);
}

TEST(SummaryTableTest, SparseKernelCountersAppearInSummary) {
  Registry reg;
  reg.counter("lp.sparse.ipm_solves").add(2);
  reg.counter("lp.sparse.simplex_pricing_solves").add(5);
  reg.gauge("lp.sparse.last_nnz").set(730);
  std::ostringstream os;
  os << summary_table(reg);
  const std::string text = os.str();
  for (const char* needle :
       {"lp.sparse.ipm_solves", "lp.sparse.simplex_pricing_solves",
        "lp.sparse.last_nnz"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(PrometheusExportTest, BucketCountsAreCumulative) {
  Registry reg;
  Histogram& h = reg.histogram("h");
  h.observe(0.5);
  h.observe(0.5);
  h.observe(50.0);

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("mecsched_h_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("mecsched_h_bucket{le=\"100\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("mecsched_h_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
}

TEST(SummaryTableTest, ListsEveryMetricWithItsKind) {
  Registry reg;
  reg.counter("events").add(3);
  reg.gauge("gap").set(1.5);
  reg.histogram("dur.seconds").observe(2.0);
  reg.histogram("empty.seconds");

  std::ostringstream os;
  os << summary_table(reg);
  const std::string text = os.str();
  for (const char* needle :
       {"metric", "events", "counter", "gap", "gauge", "dur.seconds",
        "histogram", "empty.seconds"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(SummaryTableTest, HistogramRowsCarryPercentileColumns) {
  Registry reg;
  Histogram& h = reg.histogram("dur.seconds");
  for (int i = 0; i < 100; ++i) h.observe(0.5);
  reg.counter("events").add(1);

  std::ostringstream os;
  os << summary_table(reg);
  const std::string text = os.str();
  // Deterministic column order with the new percentile columns appended.
  const std::size_t p50 = text.find("p50");
  const std::size_t p90 = text.find("p90");
  const std::size_t p99 = text.find("p99");
  ASSERT_NE(p50, std::string::npos);
  ASSERT_NE(p90, std::string::npos);
  ASSERT_NE(p99, std::string::npos);
  EXPECT_LT(text.find("mean"), p50);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  // All mass at 0.5: the percentiles clamp to the observed value, while
  // counter rows pad the columns with "-".
  EXPECT_NE(text.find("0.5"), std::string::npos);
  EXPECT_NE(text.find('-'), std::string::npos);
}

TEST(SummaryTableTest, WindowAndRateRowsAppear) {
  Registry reg;
  reg.window("decision_ms", 0.0, 4).observe(3.0);
  reg.rate("decisions", 0.0, 4).record(5);

  std::ostringstream os;
  os << summary_table(reg);
  const std::string text = os.str();
  EXPECT_NE(text.find("decision_ms.window"), std::string::npos);
  EXPECT_NE(text.find("window"), std::string::npos);
  EXPECT_NE(text.find("decisions"), std::string::npos);
  EXPECT_NE(text.find("rate"), std::string::npos);
}

TEST(PrometheusExportTest, WindowFamiliesExportAsGauges) {
  Registry reg;
  reg.window("lp.solve.seconds", 0.0, 4).observe(0.25);
  reg.rate("lp.solves", 0.0, 4).record(2);

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("mecsched_lp_solve_seconds_window_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("mecsched_lp_solve_seconds_window_p95"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE mecsched_lp_solve_seconds_window_p50 gauge"),
      std::string::npos);
  EXPECT_NE(text.find("mecsched_lp_solves_window_count 2"),
            std::string::npos);
}

}  // namespace
}  // namespace mecsched::obs
