#include "obs/window.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace mecsched::obs {
namespace {

// epoch_seconds == 0 puts a window in manual mode: epochs roll only on
// advance(), so every test below is wall-clock free and deterministic.
// (The class owns a mutex, so windows are constructed in place.)
TEST(WindowedHistogramTest, EmptySnapshotIsAllNaN) {
  const WindowedHistogram w(0.0, 4);
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(std::isnan(s.p50));
  EXPECT_TRUE(std::isnan(s.p99));
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_TRUE(std::isnan(s.max));
}

TEST(WindowedHistogramTest, TracksCountSumMinMax) {
  WindowedHistogram w(0.0, 4);
  w.observe(1.0);
  w.observe(3.0);
  w.observe(2.0);
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(WindowedHistogramTest, PercentilesClampToObservedRange) {
  WindowedHistogram w(0.0, 4);
  for (int i = 0; i < 100; ++i) w.observe(5.0);
  const auto s = w.snapshot();
  // All samples share a bucket; interpolation must not escape [min, max].
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p99, 5.0);
}

TEST(WindowedHistogramTest, PercentilesAreOrderedAndBracketed) {
  WindowedHistogram w(0.0, 4);
  for (int i = 1; i <= 1000; ++i) w.observe(i * 1e-3);  // 1ms..1s
  const auto s = w.snapshot();
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
}

TEST(WindowedHistogramTest, OldEpochsFallOutOfTheWindow) {
  WindowedHistogram w(0.0, 3);
  w.observe(1.0);
  w.advance();
  w.observe(2.0);
  EXPECT_EQ(w.snapshot().count, 2u);
  // Two more advances push the epoch holding 1.0 out of the 3-epoch ring.
  w.advance(2);
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  // And one more expires everything.
  w.advance();
  EXPECT_EQ(w.snapshot().count, 0u);
}

TEST(WindowedHistogramTest, ManualModeHasNoRate) {
  WindowedHistogram w(0.0, 4);
  w.observe(1.0);
  EXPECT_TRUE(std::isnan(w.snapshot().rate_hz));
}

TEST(WindowedHistogramTest, TimedModeReportsARate) {
  WindowedHistogram w(3600.0, 2);  // huge epochs: nothing expires mid-test
  for (int i = 0; i < 720; ++i) w.observe(1.0);
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 720u);
  EXPECT_TRUE(std::isfinite(s.rate_hz));
  EXPECT_GT(s.rate_hz, 0.0);
}

TEST(WindowedHistogramTest, RejectsZeroEpochs) {
  EXPECT_THROW(WindowedHistogram(1.0, 0), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram(-1.0, 4), std::invalid_argument);
}

TEST(WindowedHistogramTest, MergeFoldsLiveSamples) {
  WindowedHistogram a(0.0, 4);
  WindowedHistogram b(0.0, 4);
  a.observe(1.0);
  b.observe(2.0);
  b.observe(4.0);
  a.merge_from(b);
  const auto s = a.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(WindowedHistogramTest, MergeOrderDoesNotChangeTheAggregate) {
  // The sweep runner merges shards in grid order; the collapsed-epoch
  // merge must make any order equivalent. Fold the same three shards in
  // two different orders and compare snapshots field by field.
  std::vector<std::vector<double>> shards = {
      {1e-3, 2e-3}, {5e-3, 7e-3, 9e-3}, {4e-3}};
  const auto fold = [&](std::vector<std::size_t> order) {
    WindowedHistogram sink(0.0, 4);
    for (const std::size_t i : order) {
      WindowedHistogram shard(0.0, 4);
      for (const double v : shards[i]) shard.observe(v);
      sink.merge_from(shard);
    }
    return sink.snapshot();
  };
  const auto forward = fold({0, 1, 2});
  const auto backward = fold({2, 1, 0});
  EXPECT_EQ(forward.count, backward.count);
  EXPECT_DOUBLE_EQ(forward.sum, backward.sum);
  EXPECT_DOUBLE_EQ(forward.min, backward.min);
  EXPECT_DOUBLE_EQ(forward.max, backward.max);
  EXPECT_DOUBLE_EQ(forward.p50, backward.p50);
  EXPECT_DOUBLE_EQ(forward.p99, backward.p99);
}

TEST(WindowedHistogramTest, ResetClears) {
  WindowedHistogram w(0.0, 4);
  w.observe(1.0);
  w.reset();
  EXPECT_EQ(w.snapshot().count, 0u);
}

TEST(WindowedHistogramTest, ConcurrentObserversAreCounted) {
  WindowedHistogram w(0.0, 4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w] {
      for (int i = 0; i < kPerThread; ++i) w.observe(1e-3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(w.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RateWindowTest, CountsAndExpires) {
  RateWindow r(0.0, 2);
  r.record();
  r.record(4);
  EXPECT_EQ(r.snapshot().count, 5u);
  EXPECT_TRUE(std::isnan(r.snapshot().rate_hz));  // manual mode
  r.advance(2);
  EXPECT_EQ(r.snapshot().count, 0u);
}

TEST(RateWindowTest, MergeAddsCounts) {
  RateWindow a(0.0, 2);
  RateWindow b(0.0, 2);
  a.record(2);
  b.record(3);
  a.merge_from(b);
  EXPECT_EQ(a.snapshot().count, 5u);
}

TEST(RegistryWindowTest, WindowMayShareANameWithAHistogram) {
  Registry reg;
  reg.histogram("exec.sweep.cell_seconds").observe(1.0);
  // Separate namespace: no kind-collision throw, both live.
  reg.window("exec.sweep.cell_seconds", 0.0, 4).observe(1.0);
  EXPECT_EQ(reg.windows().size(), 1u);
  EXPECT_EQ(reg.histograms().size(), 1u);
}

TEST(RegistryWindowTest, MergeFromCarriesWindowsAndRates) {
  Registry a;
  Registry b;
  b.window("w", 0.0, 4).observe(2.0);
  b.rate("r", 0.0, 4).record(3);
  a.merge_from(b);
  EXPECT_EQ(a.windows().size(), 1u);
  EXPECT_EQ(a.windows()[0].second->snapshot().count, 1u);
  EXPECT_EQ(a.rates()[0].second->snapshot().count, 3u);
}

TEST(RegistryWindowTest, ResetClearsWindows) {
  Registry reg;
  WindowedHistogram& w = reg.window("w", 0.0, 4);
  w.observe(1.0);
  reg.reset();
  EXPECT_EQ(w.snapshot().count, 0u);  // reference stays valid
}

TEST(HistogramTest, ApproxPercentileBracketsTheSamples) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(i * 1e-2);  // 0.01 .. 1.0
  EXPECT_GE(h.approx_percentile(0.5), 0.01);
  EXPECT_LE(h.approx_percentile(0.5), 1.0);
  EXPECT_LE(h.approx_percentile(0.5), h.approx_percentile(0.99));
  EXPECT_TRUE(std::isnan(Histogram().approx_percentile(0.5)));
}

}  // namespace
}  // namespace mecsched::obs
