#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.h"

namespace mecsched::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, KeepsLastWrite) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, SummaryTracksObservations) {
  Histogram h;
  h.observe(1.0);
  h.observe(3.0);
  const Summary s = h.summary();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(HistogramTest, CumulativeBucketsAreMonotone) {
  Histogram h;
  h.observe(0.5);     // <= 1e0
  h.observe(0.002);   // <= 1e-2
  h.observe(5000.0);  // <= 1e4
  h.observe(1e12);    // above the last finite bound: +Inf only

  const std::vector<std::uint64_t> cum = h.cumulative_buckets();
  ASSERT_EQ(cum.size(), Histogram::bucket_bounds().size());
  for (std::size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
  // Three observations fit finite buckets; the 1e12 one only counts toward
  // the implicit +Inf bucket (= summary count).
  EXPECT_EQ(cum.back(), 3u);
  EXPECT_EQ(h.summary().count(), 4u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.observe(1.0);
  h.reset();
  EXPECT_EQ(h.summary().count(), 0u);
  EXPECT_EQ(h.cumulative_buckets().back(), 0u);
}

TEST(RegistryTest, FindOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& c = reg.counter("a.counter");
  c.add(7);
  EXPECT_EQ(&reg.counter("a.counter"), &c);
  EXPECT_EQ(reg.counter("a.counter").value(), 7u);
}

TEST(RegistryTest, KindCollisionThrows) {
  Registry reg;
  reg.counter("x");
  reg.gauge("y");
  EXPECT_THROW(reg.gauge("x"), ModelError);
  EXPECT_THROW(reg.histogram("x"), ModelError);
  EXPECT_THROW(reg.counter("y"), ModelError);
}

TEST(RegistryTest, ResetZeroesInPlaceKeepingReferencesValid) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(2.0);
  h.observe(1.0);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.summary().count(), 0u);

  // Cached references must still feed the same registry entries.
  c.add(3);
  EXPECT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.counters()[0].second, 3u);
}

TEST(RegistryTest, SnapshotsAreSortedByName) {
  Registry reg;
  reg.counter("z");
  reg.counter("a");
  reg.counter("m");
  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "m");
  EXPECT_EQ(snap[2].first, "z");
}

// The LP-HTA cluster workers report into the registry from std::async
// threads; totals must be exact under contention (run under the
// MECSCHED_SANITIZE build this also exercises the thread sanitizers).
TEST(RegistryTest, ConcurrentWritersProduceExactTotals) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("shared.counter").add();
        reg.histogram("shared.histogram").observe(1.0);
        reg.gauge("shared.gauge").set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(reg.counter("shared.counter").value(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const Summary s = reg.histogram("shared.histogram").summary();
  EXPECT_EQ(s.count(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  EXPECT_GE(reg.gauge("shared.gauge").value(), 0.0);
}

TEST(HistogramTest, MergeFromIsSampleExact) {
  Histogram a, b, reference;
  for (double v : {0.5, 2.0, 5000.0}) {
    a.observe(v);
    reference.observe(v);
  }
  for (double v : {0.002, 0.5, 1e12}) {
    b.observe(v);
    reference.observe(v);
  }
  a.merge_from(b);
  const Summary merged = a.summary();
  const Summary expected = reference.summary();
  EXPECT_EQ(merged.count(), expected.count());
  EXPECT_DOUBLE_EQ(merged.mean(), expected.mean());
  EXPECT_DOUBLE_EQ(merged.min(), expected.min());
  EXPECT_DOUBLE_EQ(merged.max(), expected.max());
  // The shared static bucket grid makes the merge exact per bucket too.
  EXPECT_EQ(a.cumulative_buckets(), reference.cumulative_buckets());
}

TEST(HistogramTest, MergeFromEmptyIsANoOp) {
  Histogram a, empty;
  a.observe(4.0);
  a.merge_from(empty);
  EXPECT_EQ(a.summary().count(), 1u);
  EXPECT_DOUBLE_EQ(a.summary().mean(), 4.0);
}

TEST(RegistryTest, MergeFromAggregatesEveryMetricKind) {
  Registry a, b;
  a.counter("shared.c").add(2);
  b.counter("shared.c").add(3);
  b.counter("only.b").add(7);
  a.gauge("g").set(1.5);
  b.gauge("g").set(2.5);
  a.histogram("h").observe(1.0);
  b.histogram("h").observe(3.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("shared.c").value(), 5u);
  EXPECT_EQ(a.counter("only.b").value(), 7u);
  // Gauges are last-merge-wins.
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 2.5);
  const Summary s = a.histogram("h").summary();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  // `b` is untouched.
  EXPECT_EQ(b.counter("shared.c").value(), 3u);
  EXPECT_EQ(b.histogram("h").summary().count(), 1u);
}

TEST(RegistryTest, GaugeLastWinsIsDeterministicUnderShardOrder) {
  // The sweep runner merges shards in grid order; last-merge-wins gauges
  // must therefore always end at the highest-index shard's value, no
  // matter which shard finished running first.
  Registry sink;
  std::vector<std::unique_ptr<Registry>> shards;
  for (std::size_t i = 0; i < 4; ++i) {
    shards.push_back(std::make_unique<Registry>());
    shards[i]->gauge("cell.value").set(static_cast<double>(i));
  }
  for (const auto& shard : shards) sink.merge_from(*shard);
  EXPECT_DOUBLE_EQ(sink.gauge("cell.value").value(), 3.0);
}

TEST(HistogramTest, MergeFromWithConcurrentObserversLosesNothing) {
  // merge_from snapshots the source under its lock while other threads
  // keep observing into both sides; every sample must land exactly once
  // in (source + sink). Run under TSan in CI.
  Histogram source, sink;
  constexpr int kObservers = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kObservers);
  for (int t = 0; t < kObservers; ++t) {
    threads.emplace_back([&source, &sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        (t % 2 == 0 ? source : sink).observe(1e-3);
      }
    });
  }
  for (int m = 0; m < 50; ++m) sink.merge_from(source);
  for (auto& t : threads) t.join();
  sink.merge_from(source);  // final drain: everything counted >= once
  // Samples merged mid-run are counted again by later merges, so the sink
  // holds at least (source total merged once) + its own; the invariant
  // that survives the race is "nothing vanished".
  const std::uint64_t direct = 2ull * kPerThread;  // sink's own observers
  EXPECT_GE(sink.summary().count(), direct + 2ull * kPerThread);
  EXPECT_EQ(source.summary().count(), 2ull * kPerThread);
}

}  // namespace
}  // namespace mecsched::obs
