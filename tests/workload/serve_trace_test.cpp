// Serve-trace generator: substream determinism and the epoch-prefix
// property (see serve_trace.h).
#include "workload/serve_trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.h"

namespace mecsched::workload {
namespace {

ServeTraceConfig small_config() {
  ServeTraceConfig cfg;
  cfg.scenario.num_devices = 20;
  cfg.scenario.num_base_stations = 4;
  cfg.scenario.seed = 3;
  cfg.epochs = 4;
  cfg.epoch_s = 0.5;
  cfg.arrival_rate_per_s = 20.0;
  cfg.join_rate_per_s = 1.0;
  cfg.leave_rate_per_s = 2.0;
  cfg.migrate_rate_per_s = 2.0;
  return cfg;
}

std::string fingerprint(const serve::Event& e) {
  std::ostringstream s;
  s.precision(17);
  s << e.time_s << '|' << static_cast<int>(e.kind) << '|' << e.device << '|'
    << e.station << '|' << e.task.id.user << '|' << e.task.id.index << '|'
    << e.task.local_bytes << '|' << e.task.external_bytes << '|'
    << e.task.external_owner << '|' << e.task.resource << '|'
    << e.task.deadline_s;
  return s.str();
}

TEST(ServeTraceTest, SameSeedYieldsIdenticalTrace) {
  const ServeWorkload a = make_serve_workload(small_config());
  const ServeWorkload b = make_serve_workload(small_config());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(fingerprint(a.trace.events()[i]),
              fingerprint(b.trace.events()[i]));
  }
}

TEST(ServeTraceTest, DifferentSeedsDiffer) {
  ServeTraceConfig other = small_config();
  other.scenario.seed = 4;
  const ServeWorkload a = make_serve_workload(small_config());
  const ServeWorkload b = make_serve_workload(other);
  bool any_diff = a.trace.size() != b.trace.size();
  for (std::size_t i = 0; !any_diff && i < a.trace.size(); ++i) {
    any_diff = fingerprint(a.trace.events()[i]) !=
               fingerprint(b.trace.events()[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ServeTraceTest, ExtendingTheHorizonPreservesThePrefix) {
  // Epoch k draws from substreams keyed by (kind, k), so a 4-epoch trace
  // must be exactly the first 4 epochs of an 8-epoch trace.
  ServeTraceConfig longer = small_config();
  longer.epochs = 8;
  const ServeWorkload short_w = make_serve_workload(small_config());
  const ServeWorkload long_w = make_serve_workload(longer);
  ASSERT_GE(long_w.trace.size(), short_w.trace.size());
  for (std::size_t i = 0; i < short_w.trace.size(); ++i) {
    EXPECT_EQ(fingerprint(short_w.trace.events()[i]),
              fingerprint(long_w.trace.events()[i]))
        << "event " << i;
  }
}

TEST(ServeTraceTest, EventsAreSortedAndWithinTheHorizon) {
  const ServeWorkload w = make_serve_workload(small_config());
  const ServeTraceConfig cfg = small_config();
  double prev = 0.0;
  for (const serve::Event& e : w.trace.events()) {
    EXPECT_GE(e.time_s, prev);
    prev = e.time_s;
    EXPECT_LT(e.time_s, static_cast<double>(cfg.epochs) * cfg.epoch_s);
  }
  EXPECT_GT(w.trace.arrivals(), 0u);
  EXPECT_GT(w.trace.churn_events(), 0u);
}

TEST(ServeTraceTest, TraceValidatesAgainstItsOwnUniverse) {
  const ServeWorkload w = make_serve_workload(small_config());
  EXPECT_NO_THROW(w.trace.validate_against(w.universe.num_devices(),
                                           w.universe.num_base_stations()));
}

TEST(ServeTraceTest, ZeroChurnRatesYieldArrivalsOnly) {
  ServeTraceConfig cfg = small_config();
  cfg.join_rate_per_s = 0.0;
  cfg.leave_rate_per_s = 0.0;
  cfg.migrate_rate_per_s = 0.0;
  const ServeWorkload w = make_serve_workload(cfg);
  EXPECT_EQ(w.trace.churn_events(), 0u);
  EXPECT_GT(w.trace.arrivals(), 0u);
}

TEST(ServeTraceTest, RejectsBadConfigs) {
  ServeTraceConfig cfg = small_config();
  cfg.epochs = 0;
  EXPECT_THROW(make_serve_workload(cfg), ModelError);
  cfg = small_config();
  cfg.epoch_s = 0.0;
  EXPECT_THROW(make_serve_workload(cfg), ModelError);
  cfg = small_config();
  cfg.leave_rate_per_s = -1.0;
  EXPECT_THROW(make_serve_workload(cfg), ModelError);
}

TEST(ServeTraceTest, TaskIndicesArePerIssuerAndDense) {
  const ServeWorkload w = make_serve_workload(small_config());
  std::vector<std::size_t> next(w.universe.num_devices(), 0);
  for (const serve::Event& e : w.trace.events()) {
    if (e.kind != serve::EventKind::kTaskArrival) continue;
    EXPECT_EQ(e.task.id.index, next[e.task.id.user]++);
  }
}

}  // namespace
}  // namespace mecsched::workload
