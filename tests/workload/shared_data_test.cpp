#include "workload/shared_data.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace mecsched::workload {
namespace {

TEST(SharedDataTest, GeneratesConsistentScenario) {
  SharedDataConfig cfg;
  cfg.num_devices = 15;
  cfg.num_base_stations = 3;
  cfg.num_tasks = 25;
  cfg.num_items = 100;
  const auto s = make_shared_scenario(cfg);  // validate() runs inside
  EXPECT_EQ(s.topology.num_devices(), 15u);
  EXPECT_EQ(s.ownership.size(), 15u);
  EXPECT_EQ(s.tasks.size(), 25u);
  EXPECT_EQ(s.universe.num_items(), 100u);
}

TEST(SharedDataTest, EveryItemHasAnOwner) {
  SharedDataConfig cfg;
  cfg.num_items = 200;
  const auto s = make_shared_scenario(cfg);
  std::vector<bool> owned(200, false);
  for (const auto& d : s.ownership) {
    for (std::size_t r : d) owned[r] = true;
  }
  for (std::size_t r = 0; r < 200; ++r) EXPECT_TRUE(owned[r]) << r;
}

TEST(SharedDataTest, Deterministic) {
  SharedDataConfig cfg;
  cfg.seed = 5;
  const auto a = make_shared_scenario(cfg);
  const auto b = make_shared_scenario(cfg);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].items, b.tasks[i].items);
  }
  EXPECT_EQ(a.ownership, b.ownership);
}

TEST(SharedDataTest, TaskVolumeTracksConfig) {
  SharedDataConfig cfg;
  cfg.max_input_kb = 2000.0;
  cfg.item_kb = 100.0;
  cfg.num_items = 300;
  const auto s = make_shared_scenario(cfg);
  for (const auto& t : s.tasks) {
    const double bytes = s.universe.total_bytes(t.items);
    EXPECT_LE(bytes, units::kilobytes(2000.0) + units::kilobytes(50.0));
    EXPECT_GE(bytes, units::kilobytes(100.0) - 1.0);  // at least one item
  }
}

TEST(SharedDataTest, HeterogeneousBlockSizes) {
  SharedDataConfig cfg;
  cfg.item_kb = 100.0;
  cfg.item_size_spread = 10.0;
  cfg.num_items = 200;
  cfg.seed = 3;
  const auto s = make_shared_scenario(cfg);
  double lo = 1e300, hi = 0.0;
  for (std::size_t r = 0; r < 200; ++r) {
    const double b = s.universe.item_size(r);
    EXPECT_GE(b, units::kilobytes(100.0) - 1e-6);
    EXPECT_LE(b, units::kilobytes(1000.0) + 1e-6);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  EXPECT_GT(hi, 3.0 * lo);  // genuinely heterogeneous
}

TEST(SharedDataTest, SpreadOfOneKeepsEqualBlocks) {
  SharedDataConfig cfg;
  cfg.item_size_spread = 1.0;
  const auto s = make_shared_scenario(cfg);
  for (std::size_t r = 0; r < s.universe.num_items(); ++r) {
    EXPECT_DOUBLE_EQ(s.universe.item_size(r), units::kilobytes(cfg.item_kb));
  }
}

TEST(SharedDataTest, OwnershipSetsAreSortedUnique) {
  const auto s = make_shared_scenario(SharedDataConfig{});
  for (const auto& d : s.ownership) {
    EXPECT_TRUE(dta::is_sorted_unique(d));
  }
}

TEST(SharedDataTest, ReplicationBoundedByConfig) {
  SharedDataConfig cfg;
  cfg.max_extra_owners = 2;
  cfg.num_items = 150;
  const auto s = make_shared_scenario(cfg);
  std::vector<int> copies(150, 0);
  for (const auto& d : s.ownership) {
    for (std::size_t r : d) ++copies[r];
  }
  for (int c : copies) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 3);
  }
}

}  // namespace
}  // namespace mecsched::workload
