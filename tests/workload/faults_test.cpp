// Fault-schedule generator tests: determinism, churn alternation,
// correlated cell outages, fading factors, and config validation.
#include <gtest/gtest.h>

#include <map>

#include "common/error.h"

#include "workload/faults.h"
#include "workload/scenario.h"

namespace mecsched::workload {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultSchedule;

mec::Topology topology(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = 1;
  cfg.num_devices = 12;
  cfg.num_base_stations = 3;
  return make_scenario(cfg).topology;
}

TEST(FaultGenTest, DefaultConfigIsQuiet) {
  const FaultSchedule s = make_fault_schedule(FaultModelConfig{}, topology());
  EXPECT_TRUE(s.empty());
}

TEST(FaultGenTest, DeterministicInSeed) {
  const mec::Topology topo = topology();
  FaultModelConfig cfg;
  cfg.device_mtbf_s = 10.0;
  cfg.station_outage_rate_per_s = 0.05;
  cfg.correlated_device_prob = 0.3;
  cfg.link_fade_rate_per_s = 0.1;
  cfg.seed = 42;
  const FaultSchedule a = make_fault_schedule(cfg, topo);
  const FaultSchedule b = make_fault_schedule(cfg, topo);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time_s, b.events()[i].time_s);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
  }
  cfg.seed = 43;
  const FaultSchedule c = make_fault_schedule(cfg, topo);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].time_s != c.events()[i].time_s;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultGenTest, DeviceChurnAlternatesPerDevice) {
  const mec::Topology topo = topology();
  FaultModelConfig cfg;
  cfg.device_mtbf_s = 5.0;
  cfg.device_mttr_s = 2.0;
  cfg.horizon_s = 100.0;
  const FaultSchedule s = make_fault_schedule(cfg, topo);
  EXPECT_GT(s.device_failures(), 0u);

  std::map<std::size_t, std::vector<FaultEvent>> per_device;
  for (const FaultEvent& e : s.events()) {
    ASSERT_LT(e.time_s, cfg.horizon_s);
    ASSERT_GE(e.time_s, 0.0);
    per_device[e.target].push_back(e);
  }
  for (const auto& [dev, events] : per_device) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      const FaultKind expected =
          i % 2 == 0 ? FaultKind::kDeviceFail : FaultKind::kDeviceRecover;
      EXPECT_EQ(events[i].kind, expected) << "device " << dev << " event " << i;
      if (i > 0) {
        EXPECT_GT(events[i].time_s, events[i - 1].time_s);
      }
    }
  }
}

TEST(FaultGenTest, CorrelatedOutagesDropTheWholeCluster) {
  const mec::Topology topo = topology();
  FaultModelConfig cfg;
  cfg.station_outage_rate_per_s = 0.05;
  cfg.correlated_device_prob = 1.0;  // every cluster device drops
  cfg.horizon_s = 120.0;
  const FaultSchedule s = make_fault_schedule(cfg, topo);
  ASSERT_GT(s.station_failures(), 0u);

  for (const FaultEvent& e : s.events()) {
    if (e.kind != FaultKind::kStationFail) continue;
    // Every device of the cluster must be down the instant the cell is.
    for (std::size_t dev : topo.cluster(e.target)) {
      EXPECT_FALSE(s.device_up(dev, e.time_s))
          << "station " << e.target << " at t=" << e.time_s << " device "
          << dev;
    }
  }
}

TEST(FaultGenTest, FadeFactorsRespectTheFloor) {
  const mec::Topology topo = topology();
  FaultModelConfig cfg;
  cfg.link_fade_rate_per_s = 0.2;
  cfg.min_degrade_factor = 0.4;
  cfg.horizon_s = 80.0;
  const FaultSchedule s = make_fault_schedule(cfg, topo);
  bool saw_degrade = false;
  for (const FaultEvent& e : s.events()) {
    if (e.kind != FaultKind::kLinkDegrade) continue;
    saw_degrade = true;
    EXPECT_GE(e.factor, cfg.min_degrade_factor);
    EXPECT_LT(e.factor, 1.0);
  }
  EXPECT_TRUE(saw_degrade);
}

TEST(FaultGenTest, ValidatesConfig) {
  const mec::Topology topo = topology();
  FaultModelConfig cfg;
  cfg.horizon_s = 0.0;
  EXPECT_THROW(make_fault_schedule(cfg, topo), ModelError);
  cfg = FaultModelConfig{};
  cfg.min_degrade_factor = 0.0;
  EXPECT_THROW(make_fault_schedule(cfg, topo), ModelError);
  cfg = FaultModelConfig{};
  cfg.correlated_device_prob = 1.5;
  EXPECT_THROW(make_fault_schedule(cfg, topo), ModelError);
  cfg = FaultModelConfig{};
  cfg.device_mtbf_s = 1.0;
  cfg.device_mttr_s = 0.0;
  EXPECT_THROW(make_fault_schedule(cfg, topo), ModelError);
}

TEST(FaultGenTest, TargetsFitTheGeneratingTopology) {
  const mec::Topology topo = topology();
  FaultModelConfig cfg;
  cfg.device_mtbf_s = 4.0;
  cfg.station_outage_rate_per_s = 0.05;
  cfg.link_fade_rate_per_s = 0.1;
  const FaultSchedule s = make_fault_schedule(cfg, topo);
  EXPECT_NO_THROW(
      s.validate_against(topo.num_devices(), topo.num_base_stations()));
}

}  // namespace
}  // namespace mecsched::workload
