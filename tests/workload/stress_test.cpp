// Robustness property tests on the adversarial scenario builders: every
// algorithm must stay constraint-feasible and non-crashing under hotspot
// pressure, knife-edge deadlines and degenerate data ownership.
#include "workload/stress.h"

#include <gtest/gtest.h>

#include "assign/baselines.h"
#include "assign/best_response.h"
#include "assign/evaluator.h"
#include "assign/hgos.h"
#include "assign/lp_hta.h"
#include "dta/pipeline.h"

namespace mecsched::workload {
namespace {

TEST(HotspotTest, AllDevicesLandInClusterZero) {
  const Scenario s = make_hotspot_scenario(20, 4, 60, 1);
  EXPECT_EQ(s.topology.cluster(0).size(), 20u);
  for (std::size_t b = 1; b < 4; ++b) {
    EXPECT_TRUE(s.topology.cluster(b).empty());
  }
}

TEST(HotspotTest, LpHtaStaysFeasibleUnderHotspotPressure) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Scenario s = make_hotspot_scenario(20, 4, 120, seed);
    const assign::HtaInstance inst(s.topology, s.tasks);
    const auto plan = assign::LpHta().assign(inst);
    EXPECT_TRUE(assign::check_feasibility(inst, plan).ok) << "seed " << seed;
  }
}

TEST(HotspotTest, HotspotCostsMoreThanSpreadLoad) {
  const Scenario hot = make_hotspot_scenario(20, 4, 120, 3);
  ScenarioConfig cfg;
  cfg.num_devices = 20;
  cfg.num_base_stations = 4;
  cfg.num_tasks = 120;
  cfg.seed = 3;
  const Scenario spread = make_scenario(cfg);

  const assign::HtaInstance hi(hot.topology, hot.tasks);
  const assign::HtaInstance si(spread.topology, spread.tasks);
  const auto hm = assign::evaluate(hi, assign::LpHta().assign(hi));
  const auto sm = assign::evaluate(si, assign::LpHta().assign(si));
  // One station for everyone cannot beat four.
  EXPECT_GE(hm.unsatisfied_rate() + 1e-9, sm.unsatisfied_rate());
}

TEST(KnifeEdgeTest, ManyTasksAreHopelessButLpHtaStaysFeasible) {
  const Scenario s = make_knife_edge_scenario(100, 5);
  const assign::HtaInstance inst(s.topology, s.tasks);
  assign::LpHtaReport rep;
  const auto plan = assign::LpHta().assign_with_report(inst, rep);
  EXPECT_GT(rep.cancelled_infeasible, 0u);  // some tasks can't run anywhere
  EXPECT_TRUE(assign::check_feasibility(inst, plan).ok);
  // but not everything dies
  EXPECT_LT(plan.cancelled(), inst.num_tasks());
}

TEST(KnifeEdgeTest, EveryAlgorithmSurvives) {
  const Scenario s = make_knife_edge_scenario(60, 9);
  const assign::HtaInstance inst(s.topology, s.tasks);
  (void)assign::Hgos().assign(inst);
  (void)assign::AllToCloud().assign(inst);
  (void)assign::AllOffload().assign(inst);
  (void)assign::LocalFirst().assign(inst);
  (void)assign::BestResponse().assign(inst);
  SUCCEED();
}

TEST(SingleOwnerTest, DtaUsesExactlyOneDevice) {
  const auto scenario = make_single_owner_scenario(8, 12, 2);
  for (dta::DtaStrategy strat :
       {dta::DtaStrategy::kWorkload, dta::DtaStrategy::kNumber}) {
    const auto r = dta::run_dta(scenario, dta::DtaOptions{strat});
    EXPECT_EQ(r.involved_devices, 1u) << dta::to_string(strat);
    EXPECT_FALSE(r.coverage.assigned[0].empty());
  }
}

TEST(MiniatureTest, IsDeterministicWithoutAnyRng) {
  const Scenario a = make_miniature_scenario();
  const Scenario b = make_miniature_scenario();
  ASSERT_EQ(a.tasks.size(), 6u);
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].local_bytes, b.tasks[i].local_bytes);
  }
  const assign::HtaInstance ia(a.topology, a.tasks);
  const assign::HtaInstance ib(b.topology, b.tasks);
  EXPECT_EQ(assign::LpHta().assign(ia).decisions,
            assign::LpHta().assign(ib).decisions);
}

TEST(MiniatureTest, GoldenAssignmentProperties) {
  // Regression guard on the miniature system: the plan is feasible, places
  // every task, and the totals stay in a narrow window. (Not exact-value
  // golden: the window survives legitimate solver tie-break changes.)
  const Scenario s = make_miniature_scenario();
  const assign::HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);
  EXPECT_EQ(plan.cancelled(), 0u);
  EXPECT_TRUE(assign::check_feasibility(inst, plan).ok);
  const auto m = assign::evaluate(inst, plan);
  EXPECT_GT(m.total_energy_j, 10.0);
  EXPECT_LT(m.total_energy_j, 200.0);
  EXPECT_LT(m.mean_latency_s, 5.0);
}

}  // namespace
}  // namespace mecsched::workload
