#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/units.h"
#include "mec/cost_model.h"

namespace mecsched::workload {
namespace {

TEST(ScenarioTest, GeneratesRequestedCounts) {
  ScenarioConfig cfg;
  cfg.num_devices = 20;
  cfg.num_base_stations = 4;
  cfg.num_tasks = 57;
  const Scenario s = make_scenario(cfg);
  EXPECT_EQ(s.topology.num_devices(), 20u);
  EXPECT_EQ(s.topology.num_base_stations(), 4u);
  EXPECT_EQ(s.tasks.size(), 57u);
}

TEST(ScenarioTest, DeterministicForSameSeed) {
  ScenarioConfig cfg;
  cfg.seed = 77;
  const Scenario a = make_scenario(cfg);
  const Scenario b = make_scenario(cfg);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].local_bytes, b.tasks[i].local_bytes);
    EXPECT_DOUBLE_EQ(a.tasks[i].deadline_s, b.tasks[i].deadline_s);
    EXPECT_EQ(a.tasks[i].external_owner, b.tasks[i].external_owner);
  }
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  ScenarioConfig cfg;
  cfg.seed = 1;
  const Scenario a = make_scenario(cfg);
  cfg.seed = 2;
  const Scenario b = make_scenario(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.tasks.size() && !any_diff; ++i) {
    any_diff = a.tasks[i].local_bytes != b.tasks[i].local_bytes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioTest, TaskSizesRespectConfiguredRange) {
  ScenarioConfig cfg;
  cfg.max_input_kb = 3000.0;
  cfg.num_tasks = 200;
  const Scenario s = make_scenario(cfg);
  for (const mec::Task& t : s.tasks) {
    EXPECT_LE(t.input_bytes(), units::kilobytes(3000.0) + 1e-6);
    EXPECT_GE(t.input_bytes(),
              units::kilobytes(3000.0) * cfg.min_input_fraction - 1e-6);
    // β ≤ 0.5 α (paper: external data is 0–0.5× the local data)
    EXPECT_LE(t.external_bytes, 0.5 * t.local_bytes + 1e-6);
  }
}

TEST(ScenarioTest, ExternalOwnerIsNeverTheIssuer) {
  ScenarioConfig cfg;
  cfg.num_tasks = 300;
  const Scenario s = make_scenario(cfg);
  for (const mec::Task& t : s.tasks) {
    if (t.external_bytes > 0.0) {
      EXPECT_NE(t.external_owner, t.id.user);
    }
  }
}

TEST(ScenarioTest, TasksSpreadAcrossUsers) {
  ScenarioConfig cfg;
  cfg.num_devices = 10;
  cfg.num_tasks = 100;
  const Scenario s = make_scenario(cfg);
  std::vector<int> counts(10, 0);
  for (const mec::Task& t : s.tasks) counts[t.id.user]++;
  for (int c : counts) EXPECT_EQ(c, 10);  // exactly m = 10 tasks per user
}

TEST(ScenarioTest, EveryTaskHasAFeasiblePlacement) {
  // With slack_min > 1 the deadline always admits the best placement.
  ScenarioConfig cfg;
  cfg.num_tasks = 150;
  const Scenario s = make_scenario(cfg);
  const mec::CostModel cost(s.topology);
  for (const mec::Task& t : s.tasks) {
    const mec::TaskCosts c = cost.evaluate(t);
    bool feasible = false;
    for (mec::Placement p : mec::kAllPlacements) {
      feasible = feasible || c.latency(p) <= t.deadline_s;
    }
    EXPECT_TRUE(feasible) << mec::to_string(t.id);
  }
}

TEST(ScenarioTest, DeviceFrequenciesInConfiguredBand) {
  ScenarioConfig cfg;
  const Scenario s = make_scenario(cfg);
  for (std::size_t i = 0; i < s.topology.num_devices(); ++i) {
    const double f = s.topology.device(i).cpu_hz;
    EXPECT_GE(f, cfg.params.device_min_hz);
    EXPECT_LE(f, cfg.params.device_max_hz);
  }
}

TEST(ScenarioTest, MixesRadioProfiles) {
  ScenarioConfig cfg;
  cfg.num_devices = 100;
  cfg.wifi_prob = 0.5;
  const Scenario s = make_scenario(cfg);
  int wifi = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (s.topology.device(i).radio.upload_bps == mec::kWiFi.upload_bps) ++wifi;
  }
  EXPECT_GT(wifi, 20);
  EXPECT_LT(wifi, 80);
}

TEST(ScenarioTest, ShannonRateModelProducesVariedPositiveRates) {
  ScenarioConfig cfg;
  cfg.rate_model = ScenarioConfig::RateModel::kShannon;
  cfg.num_devices = 40;
  cfg.seed = 6;
  const Scenario s = make_scenario(cfg);
  double min_up = 1e300, max_up = 0.0;
  for (std::size_t i = 0; i < 40; ++i) {
    const mec::RadioProfile& r = s.topology.device(i).radio;
    EXPECT_GT(r.upload_bps, 0.0);
    EXPECT_GT(r.download_bps, 0.0);
    min_up = std::min(min_up, r.upload_bps);
    max_up = std::max(max_up, r.upload_bps);
    // powers still come from the Table I profile
    EXPECT_TRUE(r.tx_power_w == mec::k4G.tx_power_w ||
                r.tx_power_w == mec::kWiFi.tx_power_w);
  }
  // channel-driven rates actually vary (unlike the two fixed profiles)
  EXPECT_GT(max_up, 2.0 * min_up);
}

TEST(ScenarioTest, ShannonScenarioRunsThroughTheWholeStack) {
  ScenarioConfig cfg;
  cfg.rate_model = ScenarioConfig::RateModel::kShannon;
  cfg.num_tasks = 30;
  cfg.seed = 7;
  const Scenario s = make_scenario(cfg);
  const mec::CostModel cost(s.topology);
  for (const mec::Task& t : s.tasks) {
    for (mec::Placement p : mec::kAllPlacements) {
      EXPECT_GT(cost.evaluate(t, p).energy_j, 0.0);
    }
  }
}

TEST(ScenarioTest, RejectsDegenerateConfigs) {
  ScenarioConfig cfg;
  cfg.num_devices = 0;
  EXPECT_THROW(make_scenario(cfg), ModelError);
  cfg.num_devices = 2;
  cfg.num_base_stations = 5;
  EXPECT_THROW(make_scenario(cfg), ModelError);
}

TEST(ScenarioTest, ConstantResultKindPropagates) {
  ScenarioConfig cfg;
  cfg.result_kind = mec::ResultSizeKind::kConstant;
  cfg.result_const_kb = 50.0;
  const Scenario s = make_scenario(cfg);
  for (const mec::Task& t : s.tasks) {
    EXPECT_EQ(t.result_kind, mec::ResultSizeKind::kConstant);
    EXPECT_DOUBLE_EQ(t.result_bytes(), units::kilobytes(50.0));
  }
}

}  // namespace
}  // namespace mecsched::workload
