#include "cli/args.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mecsched::cli {
namespace {

TEST(ArgParserTest, ParsesFlagsAndSwitches) {
  ArgParser p({"tasks", "out"}, {"verbose"});
  p.parse({"--tasks", "100", "--verbose", "--out", "x.json"});
  EXPECT_TRUE(p.has("tasks"));
  EXPECT_EQ(p.get("out", ""), "x.json");
  EXPECT_DOUBLE_EQ(p.get_num("tasks", 0), 100.0);
  EXPECT_TRUE(p.get_switch("verbose"));
}

TEST(ArgParserTest, DefaultsWhenAbsent) {
  ArgParser p({"tasks"}, {"verbose"});
  p.parse({});
  EXPECT_FALSE(p.has("tasks"));
  EXPECT_EQ(p.get("tasks", "7"), "7");
  EXPECT_DOUBLE_EQ(p.get_num("tasks", 7.5), 7.5);
  EXPECT_FALSE(p.get_switch("verbose"));
}

TEST(ArgParserTest, RejectsUnknownFlag) {
  ArgParser p({"tasks"}, {});
  EXPECT_THROW(p.parse({"--bogus", "1"}), ModelError);
}

TEST(ArgParserTest, RejectsMissingValue) {
  ArgParser p({"tasks"}, {});
  EXPECT_THROW(p.parse({"--tasks"}), ModelError);
}

TEST(ArgParserTest, RejectsBareToken) {
  ArgParser p({"tasks"}, {});
  EXPECT_THROW(p.parse({"tasks", "1"}), ModelError);
}

TEST(ArgParserTest, RejectsNonNumericValue) {
  ArgParser p({"tasks"}, {});
  p.parse({"--tasks", "many"});
  EXPECT_THROW(p.get_num("tasks", 0), ModelError);
}

TEST(ArgParserTest, SwitchDoesNotConsumeValue) {
  ArgParser p({"out"}, {"contention"});
  p.parse({"--contention", "--out", "f.json"});
  EXPECT_TRUE(p.get_switch("contention"));
  EXPECT_EQ(p.get("out", ""), "f.json");
}

}  // namespace
}  // namespace mecsched::cli
