// `mecsched serve` / `generate-serve` end-to-end through cli::run — the
// same in-process harness commands_test.cpp uses.
#include "cli/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "io/json.h"

namespace mecsched::cli {
namespace {

class ServeCliTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) const {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "mecsched_serve_" + info->name() + "_" +
           name;
  }
  void TearDown() override {
    for (const char* f : {"w.json", "r.json", "d1.csv", "d4.csv"}) {
      std::remove(path(f).c_str());
    }
  }

  int run_cli(const std::vector<std::string>& argv) {
    out_.str("");
    err_.str("");
    return run(argv, out_, err_);
  }

  std::ostringstream out_, err_;
};

const std::vector<std::string> kKnobs = {
    "--devices", "25", "--stations", "3", "--seed",       "9",
    "--epochs",  "4",  "--rate",     "25", "--leave-rate", "2",
    "--migrate-rate", "2"};

std::vector<std::string> with_knobs(std::vector<std::string> argv) {
  argv.insert(argv.end(), kKnobs.begin(), kKnobs.end());
  return argv;
}

TEST_F(ServeCliTest, ServeEmitsAConsistentSummary) {
  ASSERT_EQ(run_cli(with_knobs({"serve", "--shards", "2"})), 0)
      << err_.str();
  const io::Json j = io::Json::parse(out_.str());
  EXPECT_GT(j.at("arrivals").as_number(), 0.0);
  EXPECT_GT(j.at("decisions").as_number(), 0.0);
  EXPECT_EQ(j.at("arrivals").as_number(),
            j.at("admitted").as_number() + j.at("rejected").as_number());
  EXPECT_TRUE(j.at("decision_digest").is_string());
  EXPECT_TRUE(j.contains("fallback_rungs"));
}

TEST_F(ServeCliTest, DecisionLogIsIdenticalAcrossJobs) {
  ASSERT_EQ(run_cli(with_knobs({"serve", "--shards", "2", "--jobs", "1",
                                "--decisions-out", path("d1.csv"),
                                "--out", path("r.json")})),
            0)
      << err_.str();
  ASSERT_EQ(run_cli(with_knobs({"serve", "--shards", "2", "--jobs", "4",
                                "--decisions-out", path("d4.csv"),
                                "--out", path("r.json")})),
            0)
      << err_.str();
  std::ifstream f1(path("d1.csv")), f4(path("d4.csv"));
  const std::string c1((std::istreambuf_iterator<char>(f1)),
                       std::istreambuf_iterator<char>());
  const std::string c4((std::istreambuf_iterator<char>(f4)),
                       std::istreambuf_iterator<char>());
  ASSERT_FALSE(c1.empty());
  EXPECT_EQ(c1, c4);
}

TEST_F(ServeCliTest, GeneratedWorkloadReplaysIdentically) {
  ASSERT_EQ(run_cli(with_knobs({"generate-serve", "--out", path("w.json")})),
            0)
      << err_.str();
  ASSERT_EQ(run_cli(with_knobs({"serve", "--shards", "2"})), 0) << err_.str();
  const io::Json inline_run = io::Json::parse(out_.str());
  ASSERT_EQ(run_cli({"serve", "--replay", path("w.json"), "--shards", "2"}),
            0)
      << err_.str();
  const io::Json replayed = io::Json::parse(out_.str());
  EXPECT_EQ(inline_run.at("decision_digest").as_string(),
            replayed.at("decision_digest").as_string());
}

TEST_F(ServeCliTest, RejectsMalformedFlags) {
  EXPECT_NE(run_cli({"serve", "--epoch-s", "0"}), 0);
  EXPECT_NE(run_cli({"serve", "--epoch-s", "nan"}), 0);
  EXPECT_NE(run_cli({"serve", "--shards", "-3"}), 0);
  EXPECT_NE(run_cli({"serve", "--epoch-budget-ms", "-5"}), 0);
  EXPECT_NE(run_cli({"serve", "--rate", "bogus"}), 0);
  EXPECT_NE(run_cli({"serve", "--no-such-flag"}), 0);
}

}  // namespace
}  // namespace mecsched::cli
