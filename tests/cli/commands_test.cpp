// End-to-end CLI tests: generate -> assign -> evaluate -> simulate round
// trips through real files, all in-process via cli::run.
#include "cli/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>

#include "io/codec.h"
#include "obs/flight_recorder.h"

namespace mecsched::cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) const {
    // Unique per test case: ctest runs these as concurrent processes, and
    // a shared filename would let parallel tests clobber each other's
    // scenarios (TearDown even deletes them mid-run).
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "mecsched_cli_" + info->name() + "_" + name;
  }
  void TearDown() override {
    for (const char* f : {"s.json", "p.json", "m.json", "trace.json",
                          "metrics.prom", "flight.jsonl"}) {
      std::remove(path(f).c_str());
    }
  }

  int run_cli(const std::vector<std::string>& argv) {
    out_.str("");
    err_.str("");
    return run(argv, out_, err_);
  }

  std::ostringstream out_, err_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(run_cli({"--help"}), 0);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
  EXPECT_EQ(run_cli({}), 1);
  EXPECT_EQ(run_cli({"frobnicate"}), 1);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenerateAssignEvaluateRoundTrip) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "15", "--devices", "6",
                     "--stations", "2", "--seed", "5", "--out",
                     path("s.json")}),
            0);
  ASSERT_EQ(run_cli({"assign", "--scenario", path("s.json"), "--algorithm",
                     "lp-hta", "--out", path("p.json")}),
            0);
  ASSERT_EQ(run_cli({"evaluate", "--scenario", path("s.json"), "--plan",
                     path("p.json"), "--out", path("m.json")}),
            0);

  const io::Json metrics =
      io::Json::parse(io::read_file(path("m.json")));
  EXPECT_DOUBLE_EQ(metrics.at("num_tasks").as_number(), 15.0);
  EXPECT_TRUE(metrics.at("feasible").as_bool());
  EXPECT_GT(metrics.at("total_energy_j").as_number(), 0.0);
}

TEST_F(CliTest, GenerateIsDeterministicPerSeed) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "5", "--seed", "9"}), 0);
  const std::string first = out_.str();
  ASSERT_EQ(run_cli({"generate", "--tasks", "5", "--seed", "9"}), 0);
  EXPECT_EQ(out_.str(), first);
  ASSERT_EQ(run_cli({"generate", "--tasks", "5", "--seed", "10"}), 0);
  EXPECT_NE(out_.str(), first);
}

TEST_F(CliTest, SimulateReportsMakespan) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "10", "--devices", "5",
                     "--stations", "1", "--out", path("s.json")}),
            0);
  ASSERT_EQ(run_cli({"assign", "--scenario", path("s.json"), "--out",
                     path("p.json")}),
            0);
  ASSERT_EQ(run_cli({"simulate", "--scenario", path("s.json"), "--plan",
                     path("p.json")}),
            0);
  const io::Json r = io::Json::parse(out_.str());
  EXPECT_GT(r.at("makespan_s").as_number(), 0.0);
  EXPECT_EQ(r.at("tasks").as_array().size(), 10u);

  // contention can only increase the makespan
  const double ideal = r.at("makespan_s").as_number();
  ASSERT_EQ(run_cli({"simulate", "--scenario", path("s.json"), "--plan",
                     path("p.json"), "--contention"}),
            0);
  EXPECT_GE(io::Json::parse(out_.str()).at("makespan_s").as_number(),
            ideal - 1e-9);
}

TEST_F(CliTest, CompareListsAllAlgorithms) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "12", "--out", path("s.json")}),
            0);
  ASSERT_EQ(run_cli({"compare", "--scenario", path("s.json")}), 0);
  const std::string table = out_.str();
  for (const char* name :
       {"LP-HTA", "HGOS", "AllToC", "AllOffload", "LocalFirst"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

TEST_F(CliTest, MissingFilesAreCleanErrors) {
  EXPECT_EQ(run_cli({"assign", "--scenario", "/nope/missing.json"}), 1);
  EXPECT_NE(err_.str().find("error:"), std::string::npos);
  EXPECT_EQ(run_cli({"evaluate", "--scenario", "/nope/a", "--plan", "/nope/b"}),
            1);
}

TEST_F(CliTest, UnknownAlgorithmIsACleanError) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "5", "--out", path("s.json")}), 0);
  EXPECT_EQ(run_cli({"assign", "--scenario", path("s.json"), "--algorithm",
                     "quantum"}),
            1);
  EXPECT_NE(err_.str().find("unknown algorithm"), std::string::npos);
}

TEST_F(CliTest, PlanScenarioSizeMismatchDetected) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "5", "--out", path("s.json")}), 0);
  io::write_file(path("p.json"), R"({"decisions": ["local", "edge"]})");
  EXPECT_EQ(run_cli({"evaluate", "--scenario", path("s.json"), "--plan",
                     path("p.json")}),
            1);
}

TEST_F(CliTest, SharedScenarioAndDtaCommands) {
  ASSERT_EQ(run_cli({"generate-shared", "--tasks", "8", "--devices", "6",
                     "--stations", "2", "--items", "30", "--out",
                     path("s.json")}),
            0);
  for (const char* strategy : {"workload", "workload-bytes", "number"}) {
    ASSERT_EQ(run_cli({"dta", "--scenario", path("s.json"), "--strategy",
                       strategy, "--scheduler", "greedy"}),
              0)
        << strategy;
    const io::Json r = io::Json::parse(out_.str());
    EXPECT_GT(r.at("total_energy_j").as_number(), 0.0);
    EXPECT_GT(r.at("involved_devices").as_number(), 0.0);
  }
  EXPECT_EQ(run_cli({"dta", "--scenario", path("s.json"), "--strategy",
                     "quantum"}),
            1);
  EXPECT_NE(err_.str().find("unknown strategy"), std::string::npos);
}

TEST_F(CliTest, BreakdownCommand) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "6", "--out", path("s.json")}), 0);
  ASSERT_EQ(run_cli({"breakdown", "--scenario", path("s.json"), "--task",
                     "2"}),
            0);
  const io::Json j = io::Json::parse(out_.str());
  for (const char* p : {"local", "edge", "cloud"}) {
    ASSERT_TRUE(j.contains(p)) << p;
    EXPECT_GT(j.at(p).at("total_energy_j").as_number(), 0.0);
    EXPECT_FALSE(j.at(p).at("legs").as_array().empty());
  }
  // single placement + validation
  ASSERT_EQ(run_cli({"breakdown", "--scenario", path("s.json"), "--task",
                     "0", "--placement", "edge"}),
            0);
  EXPECT_TRUE(io::Json::parse(out_.str()).contains("edge"));
  EXPECT_EQ(run_cli({"breakdown", "--scenario", path("s.json"), "--task",
                     "99"}),
            1);
}

TEST_F(CliTest, RecoverCommand) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "12", "--devices", "6",
                     "--stations", "2", "--out", path("s.json")}),
            0);
  ASSERT_EQ(run_cli({"assign", "--scenario", path("s.json"), "--out",
                     path("p.json")}),
            0);
  ASSERT_EQ(run_cli({"recover", "--scenario", path("s.json"), "--plan",
                     path("p.json"), "--device", "1"}),
            0);
  const io::Json j = io::Json::parse(out_.str());
  EXPECT_EQ(j.at("decisions").as_array().size(), 12u);
  EXPECT_GE(j.at("lost_issued").as_number(), 1.0);  // device 1 issued tasks
}

TEST_F(CliTest, OnlinePipelineCommands) {
  ASSERT_EQ(run_cli({"generate-arrivals", "--tasks", "20", "--devices", "8",
                     "--stations", "2", "--rate", "15", "--out",
                     path("s.json")}),
            0);
  ASSERT_EQ(run_cli({"online", "--scenario", path("s.json"), "--epoch-s",
                     "0.25"}),
            0);
  const io::Json r = io::Json::parse(out_.str());
  EXPECT_EQ(r.at("outcomes").as_array().size(), 20u);
  EXPECT_GT(r.at("epochs").as_number(), 0.0);
  EXPECT_GT(r.at("total_energy_j").as_number(), 0.0);
}

TEST_F(CliTest, SensitivityCommand) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "20", "--devices", "8",
                     "--stations", "2", "--out", path("s.json")}),
            0);
  ASSERT_EQ(run_cli({"sensitivity", "--scenario", path("s.json")}), 0);
  const io::Json j = io::Json::parse(out_.str());
  EXPECT_EQ(j.at("device_shadow_price_j_per_unit").as_array().size(), 8u);
  EXPECT_EQ(j.at("station_shadow_price_j_per_unit").as_array().size(), 2u);
  for (const io::Json& v : j.at("device_shadow_price_j_per_unit").as_array()) {
    EXPECT_GE(v.as_number(), 0.0);
  }
}

TEST_F(CliTest, TraceCommand) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "8", "--out", path("s.json")}), 0);
  ASSERT_EQ(run_cli({"assign", "--scenario", path("s.json"), "--out",
                     path("p.json")}),
            0);
  ASSERT_EQ(run_cli({"trace", "--scenario", path("s.json"), "--plan",
                     path("p.json"), "--contention"}),
            0);
  const io::Json j = io::Json::parse(out_.str());
  EXPECT_EQ(j.at("timeline").as_array().size(), 8u);
  EXPECT_TRUE(j.contains("utilization"));
}

TEST_F(CliTest, PortfolioAndBrdAlgorithms) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "10", "--out", path("s.json")}),
            0);
  for (const char* algo : {"portfolio", "brd"}) {
    EXPECT_EQ(run_cli({"assign", "--scenario", path("s.json"), "--algorithm",
                       algo, "--out", path("p.json")}),
              0)
        << algo;
    EXPECT_EQ(run_cli({"evaluate", "--scenario", path("s.json"), "--plan",
                       path("p.json")}),
              0)
        << algo;
  }
}

TEST_F(CliTest, ChurnCommandReportsResilienceCounters) {
  ASSERT_EQ(run_cli({"churn", "--tasks", "30", "--devices", "10", "--stations",
                     "2", "--seed", "3", "--mtbf", "6", "--outage-rate",
                     "0.05", "--horizon", "20"}),
            0)
      << err_.str();
  const io::Json j = io::Json::parse(out_.str());
  EXPECT_DOUBLE_EQ(j.at("tasks").as_number(), 30.0);
  EXPECT_GT(j.at("fault_events").as_number(), 0.0);
  EXPECT_GE(j.at("device_failures").as_number(), 1.0);
  EXPECT_GE(j.at("unsatisfied_rate").as_number(), 0.0);
  EXPECT_LE(j.at("unsatisfied_rate").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(
      j.at("completed").as_number() + j.at("unsatisfied").as_number(), 30.0);
  const io::Json& rungs = j.at("fallback_rungs");
  EXPECT_TRUE(rungs.contains("LP-HTA"));
  EXPECT_TRUE(rungs.contains("HGOS"));
  EXPECT_TRUE(rungs.contains("LocalFirst"));
}

TEST_F(CliTest, ChurnCommandIsDeterministicPerSeed) {
  const std::vector<std::string> argv = {"churn",  "--tasks", "20", "--seed",
                                         "8",      "--mtbf",  "10", "--horizon",
                                         "15"};
  ASSERT_EQ(run_cli(argv), 0) << err_.str();
  const std::string first = out_.str();
  ASSERT_EQ(run_cli(argv), 0);
  EXPECT_EQ(out_.str(), first);
}

TEST_F(CliTest, ObsFlagsEmitTraceMetricsAndSummary) {
  const std::string trace = path("trace.json");
  const std::string prom = path("metrics.prom");
  ASSERT_EQ(run_cli({"churn", "--tasks", "12", "--devices", "5", "--stations",
                     "2", "--seed", "7", "--horizon", "10", "--trace", trace,
                     "--metrics-out", prom, "--obs-summary"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("wrote trace"), std::string::npos);
  EXPECT_NE(out_.str().find("wrote metrics"), std::string::npos);

  // The trace must be well-formed JSON and contain the solver-pipeline and
  // controller spans.
  const io::Json doc = io::Json::parse(io::read_file(trace));
  const io::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  std::set<std::string> names;
  for (const io::Json& e : events) names.insert(e.at("name").as_string());
  for (const char* expected :
       {"cli.churn", "controller.run", "controller.epoch", "lp.presolve",
        "lp.simplex.solve", "lp_hta.relax", "lp_hta.round", "lp_hta.repair"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }

  const std::string metrics = io::read_file(prom);
  EXPECT_NE(metrics.find("mecsched_controller_epochs_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("mecsched_lp_simplex_pivots_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("_bucket{le="), std::string::npos);

  // --obs-summary prints the registry as a table.
  EXPECT_NE(out_.str().find("controller.epoch.seconds"), std::string::npos);
}

TEST_F(CliTest, ObsFlagsWorkOnAnyCommand) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "5", "--seed", "2", "--out",
                     path("s.json"), "--obs-summary"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("cli.generate.seconds"), std::string::npos);
}

TEST_F(CliTest, FlightOutRecordsChaosFaultsAcrossLayers) {
  const std::string flight = path("flight.jsonl");
  ASSERT_EQ(run_cli({"chaos", "--cells", "4", "--tasks", "10", "--devices",
                     "4", "--stations", "2", "--seed", "7", "--error-prob",
                     "0.8", "--flight-out", flight}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("wrote flight record"), std::string::npos);
  // The recorder is per-invocation: off again once run() returns.
  EXPECT_FALSE(obs::FlightRecorder::global().enabled());

  const std::string jsonl = io::read_file(flight);
  // Injected faults surface as lp-layer error records, and the fallback
  // chain's degradation shows up as control-layer rung records.
  EXPECT_NE(jsonl.find("\"layer\":\"lp\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"layer\":\"control\""), std::string::npos);
  EXPECT_NE(jsonl.find("injected solver fault"), std::string::npos);
  // Every line parses as standalone JSON.
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    const io::Json record = io::Json::parse(line);
    EXPECT_TRUE(record.contains("seq"));
    EXPECT_TRUE(record.contains("status"));
    ++parsed;
  }
  EXPECT_GT(parsed, 0u);
}

TEST_F(CliTest, FlightOutCapturesDeadlineExpiryEvenWhenTheCommandFails) {
  const std::string flight = path("flight.jsonl");
  // A 1-microsecond budget is gone before the first LP iteration; the
  // sweep degrades/fails, but the flight record must still be written and
  // must name the deadline as the terminal status.
  const int code =
      run_cli({"sweep", "--grid", "smoke", "--budget-ms", "0.001",
               "--flight-out", flight});
  (void)code;  // pass or fail, the post-mortem artifact is the contract
  EXPECT_NE(out_.str().find("wrote flight record"), std::string::npos);
  const std::string jsonl = io::read_file(flight);
  EXPECT_NE(jsonl.find("\"status\":\"deadline\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"deadline_residual_ms\":"), std::string::npos);
}

TEST_F(CliTest, ReportRendersAFlightRecordPostMortem) {
  const std::string flight = path("flight.jsonl");
  ASSERT_EQ(run_cli({"chaos", "--cells", "3", "--tasks", "10", "--devices",
                     "4", "--stations", "2", "--seed", "7", "--error-prob",
                     "0.8", "--flight-out", flight}),
            0)
      << err_.str();
  ASSERT_EQ(run_cli({"report", "--flight", flight, "--top", "2"}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("flight report:"), std::string::npos);
  EXPECT_NE(out_.str().find("outcomes by layer/engine/status"),
            std::string::npos);
  EXPECT_NE(out_.str().find("slowest solves"), std::string::npos);
  EXPECT_NE(out_.str().find("sweep_cell"), std::string::npos);
}

TEST_F(CliTest, ReportRequiresAFlightFile) {
  EXPECT_EQ(run_cli({"report"}), 1);
  EXPECT_NE(err_.str().find("--flight"), std::string::npos);
}

TEST_F(CliTest, TraceFlagRequiresValue) {
  EXPECT_EQ(run_cli({"generate", "--tasks", "3", "--trace"}), 1);
  EXPECT_NE(err_.str().find("requires a file"), std::string::npos);
}

TEST_F(CliTest, ExactAlgorithmOnTinyScenario) {
  ASSERT_EQ(run_cli({"generate", "--tasks", "6", "--devices", "3",
                     "--stations", "1", "--out", path("s.json")}),
            0);
  EXPECT_EQ(run_cli({"assign", "--scenario", path("s.json"), "--algorithm",
                     "exact", "--out", path("p.json")}),
            0);
  EXPECT_EQ(run_cli({"evaluate", "--scenario", path("s.json"), "--plan",
                     path("p.json")}),
            0);
}

TEST_F(CliTest, SweepListsGrids) {
  ASSERT_EQ(run_cli({"sweep", "--list"}), 0) << err_.str();
  for (const char* grid : {"fig2a", "fig2b", "fig4a", "fig4b", "smoke"}) {
    EXPECT_NE(out_.str().find(grid), std::string::npos) << grid;
  }
}

TEST_F(CliTest, SweepRejectsUnknownGrid) {
  EXPECT_EQ(run_cli({"sweep", "--grid", "fig99"}), 1);
  EXPECT_NE(err_.str().find("unknown grid"), std::string::npos);
}

// The headline determinism guarantee: the sweep CSV is byte-identical at
// every --jobs count (and with the warm-start cache path enabled).
TEST_F(CliTest, SweepCsvIsByteIdenticalAcrossJobCounts) {
  ASSERT_EQ(run_cli({"sweep", "--grid", "smoke", "--csv", "--jobs", "1"}), 0)
      << err_.str();
  const std::string serial = out_.str();
  EXPECT_NE(serial.find("tasks,LP-HTA,HGOS,AllToC,AllOffload"),
            std::string::npos);

  ASSERT_EQ(run_cli({"sweep", "--grid", "smoke", "--csv", "--jobs", "8"}), 0)
      << err_.str();
  EXPECT_EQ(out_.str(), serial);

  ASSERT_EQ(run_cli({"sweep", "--grid", "smoke", "--csv", "--jobs", "8",
                     "--warm-start"}),
            0)
      << err_.str();
  EXPECT_EQ(out_.str(), serial);
}

TEST_F(CliTest, SweepTableReportsCacheAndJobs) {
  ASSERT_EQ(run_cli({"sweep", "--grid", "smoke", "--reps", "1", "--jobs",
                     "2"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("jobs=2"), std::string::npos);
  EXPECT_NE(out_.str().find("cache:"), std::string::npos);
}

TEST_F(CliTest, SweepWritesCsvFile) {
  ASSERT_EQ(run_cli({"sweep", "--grid", "smoke", "--reps", "1", "--out",
                     path("sweep.csv")}),
            0)
      << err_.str();
  const std::string csv = io::read_file(path("sweep.csv"));
  EXPECT_NE(csv.find("tasks,LP-HTA"), std::string::npos);
  std::remove(path("sweep.csv").c_str());
}

TEST_F(CliTest, JobsFlagRejectsGarbage) {
  EXPECT_EQ(run_cli({"sweep", "--grid", "smoke", "--jobs", "zero"}), 1);
  EXPECT_NE(err_.str().find("--jobs"), std::string::npos);
}

}  // namespace
}  // namespace mecsched::cli
