// Hardened numeric-flag parsing (satellite of the budget pipeline):
// negative, NaN and overflowing values for --jobs, --reps,
// --cache-capacity and the global --budget-ms must fail with a clear
// message naming the flag — never wrap, clamp or silently truncate — and
// the valid forms must still work, including the budgeted chaos drill.
#include "cli/commands.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/deadline.h"

namespace mecsched::cli {
namespace {

class FlagsTest : public ::testing::Test {
 protected:
  int run_cli(const std::vector<std::string>& argv) {
    out_.str("");
    err_.str("");
    return run(argv, out_, err_);
  }

  // Expects the invocation to fail with an error that names the flag.
  void expect_rejected(const std::vector<std::string>& argv,
                       const std::string& flag) {
    EXPECT_EQ(run_cli(argv), 1) << flag;
    EXPECT_NE(err_.str().find(flag), std::string::npos)
        << "error should name " << flag << ", got: " << err_.str();
  }

  std::ostringstream out_, err_;
};

TEST_F(FlagsTest, JobsRejectsNonPositiveAndNonNumeric) {
  expect_rejected({"sweep", "--grid", "smoke", "--jobs", "-1"}, "--jobs");
  expect_rejected({"sweep", "--grid", "smoke", "--jobs", "0"}, "--jobs");
  expect_rejected({"sweep", "--grid", "smoke", "--jobs", "nan"}, "--jobs");
  expect_rejected({"sweep", "--grid", "smoke", "--jobs", "2.5"}, "--jobs");
  expect_rejected({"sweep", "--grid", "smoke", "--jobs", ""}, "--jobs");
  expect_rejected(
      {"sweep", "--grid", "smoke", "--jobs", "99999999999999999999"},
      "--jobs");
}

TEST_F(FlagsTest, RepsRejectsNegativeAndOverflow) {
  expect_rejected({"sweep", "--grid", "smoke", "--reps", "-3"}, "--reps");
  expect_rejected({"sweep", "--grid", "smoke", "--reps", "1.5"}, "--reps");
  expect_rejected(
      {"sweep", "--grid", "smoke", "--reps", "99999999999999999999"},
      "--reps");
  // Zero parses as a count but is semantically rejected.
  expect_rejected({"sweep", "--grid", "smoke", "--reps", "0"}, "--reps");
}

TEST_F(FlagsTest, CacheCapacityRejectsNegativeValues) {
  expect_rejected({"sweep", "--grid", "smoke", "--cache-capacity", "-5"},
                  "--cache-capacity");
  expect_rejected({"sweep", "--grid", "smoke", "--cache-capacity", "nan"},
                  "--cache-capacity");
}

TEST_F(FlagsTest, CountFlagsRejectNegativesEverywhere) {
  expect_rejected({"generate", "--tasks", "-10"}, "--tasks");
  expect_rejected({"generate", "--devices", "1e3"}, "--devices");
  expect_rejected({"generate-shared", "--items", "-2"}, "--items");
  expect_rejected({"generate-arrivals", "--tasks", "-4"}, "--tasks");
}

TEST_F(FlagsTest, BudgetMsRejectsNegativeNanAndGarbage) {
  expect_rejected({"sweep", "--grid", "smoke", "--budget-ms", "-5"},
                  "--budget-ms");
  expect_rejected({"sweep", "--grid", "smoke", "--budget-ms", "nan"},
                  "--budget-ms");
  expect_rejected({"sweep", "--grid", "smoke", "--budget-ms", "inf"},
                  "--budget-ms");
  expect_rejected({"sweep", "--grid", "smoke", "--budget-ms", "0"},
                  "--budget-ms");
  expect_rejected({"sweep", "--grid", "smoke", "--budget-ms", "fast"},
                  "--budget-ms");
  EXPECT_EQ(run_cli({"sweep", "--grid", "smoke", "--budget-ms"}), 1);
}

TEST_F(FlagsTest, ChaosProbabilitiesAreValidated) {
  expect_rejected({"chaos", "--cells", "2", "--stall-prob", "1.5"},
                  "--stall-prob");
  expect_rejected({"chaos", "--cells", "2", "--nan-prob", "-0.1"},
                  "--nan-prob");
  expect_rejected({"chaos", "--cells", "0"}, "--cells");
}

TEST_F(FlagsTest, ValidBudgetedSweepRunsAndResetsTheDefault) {
  EXPECT_EQ(run_cli({"sweep", "--grid", "smoke", "--reps", "1", "--budget-ms",
                     "200", "--jobs", "2"}),
            0);
  // The per-invocation override must not leak into the process.
  EXPECT_DOUBLE_EQ(default_solve_budget_ms(), 0.0);
}

TEST_F(FlagsTest, ChaosDrillIsDeterministicAcrossJobs) {
  const std::vector<std::string> base = {
      "chaos",         "--cells",      "8",    "--seed",       "7",
      "--stall-prob",  "0.05",         "--nan-prob", "0.05",
      "--cancel-prob", "0.05",         "--error-prob", "0.05",
      "--csv"};
  std::vector<std::string> one = base;
  one.insert(one.end(), {"--jobs", "1"});
  std::vector<std::string> four = base;
  four.insert(four.end(), {"--jobs", "4"});
  ASSERT_EQ(run_cli(one), 0);
  const std::string serial = out_.str();
  ASSERT_EQ(run_cli(four), 0);
  EXPECT_EQ(serial, out_.str());
  EXPECT_NE(serial.find("cell,rung,digest,energy_j"), std::string::npos);
}

}  // namespace
}  // namespace mecsched::cli
