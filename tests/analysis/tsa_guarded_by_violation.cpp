// Negative fixture for the thread-safety compile suite: writes a
// MECSCHED_GUARDED_BY member without holding its mutex. Under Clang with
// -Werror=thread-safety this must FAIL to compile — that failure is the
// test. Under other compilers the annotations are no-ops and the fixture
// must compile (tests/analysis/CMakeLists.txt flips the expectation).
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // seeded violation: mu_ is not held here
  }

 private:
  mutable mecsched::Mutex mu_;
  int balance_ MECSCHED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(3);
  return 0;
}
