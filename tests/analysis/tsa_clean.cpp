// Positive fixture for the thread-safety compile suite: a correctly
// annotated class. Must compile under every supported compiler — with
// -Werror=thread-safety{,-beta} on Clang, and trivially elsewhere (the
// macros expand to nothing). If this fixture stops compiling, the macro
// layer itself regressed, not a user of it.
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void deposit(int amount) MECSCHED_EXCLUDES(mu_) {
    const mecsched::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() const MECSCHED_EXCLUDES(mu_) {
    const mecsched::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable mecsched::Mutex mu_;
  int balance_ MECSCHED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(3);
  return a.balance() == 3 ? 0 : 1;
}
