// Negative fixture for the thread-safety compile suite: acquires two
// mutexes against their declared MECSCHED_ACQUIRED_BEFORE order. Caught
// by the beta checks (-Werror=thread-safety-beta) on Clang, where this
// must FAIL to compile; elsewhere the annotations are no-ops and it must
// compile.
#include "common/thread_annotations.h"

namespace {

class Transfer {
 public:
  void wrong_order() {
    const mecsched::MutexLock hold_b(b_mu_);
    const mecsched::MutexLock hold_a(a_mu_);  // inversion: a_mu_ first
    ++a_;
    ++b_;
  }

 private:
  mecsched::Mutex a_mu_ MECSCHED_ACQUIRED_BEFORE(b_mu_);
  mecsched::Mutex b_mu_;
  int a_ MECSCHED_GUARDED_BY(a_mu_) = 0;
  int b_ MECSCHED_GUARDED_BY(b_mu_) = 0;
};

}  // namespace

int main() {
  Transfer t;
  t.wrong_order();
  return 0;
}
