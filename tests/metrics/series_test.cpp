#include "metrics/series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace mecsched::metrics {
namespace {

TEST(SeriesCollectorTest, AveragesRepeatedMeasurements) {
  SeriesCollector s("x", {"a", "b"});
  s.add(1.0, "a", 10.0);
  s.add(1.0, "a", 20.0);
  s.add(1.0, "b", 5.0);
  EXPECT_DOUBLE_EQ(s.mean(1.0, "a"), 15.0);
  EXPECT_DOUBLE_EQ(s.mean(1.0, "b"), 5.0);
}

TEST(SeriesCollectorTest, MissingCellsAreNaN) {
  SeriesCollector s("x", {"a"});
  s.add(1.0, "a", 1.0);
  EXPECT_TRUE(std::isnan(s.mean(2.0, "a")));
}

TEST(SeriesCollectorTest, RejectsUnknownSeries) {
  SeriesCollector s("x", {"a"});
  EXPECT_THROW(s.add(1.0, "zzz", 1.0), ModelError);
  EXPECT_THROW(SeriesCollector("x", {}), ModelError);
}

TEST(SeriesCollectorTest, XsSortedAscending) {
  SeriesCollector s("x", {"a"});
  s.add(3.0, "a", 1.0);
  s.add(1.0, "a", 1.0);
  s.add(2.0, "a", 1.0);
  EXPECT_EQ(s.xs(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SeriesCollectorTest, TableShowsMissingAsDash) {
  SeriesCollector s("x", {"a", "b"});
  s.add(1.0, "a", 2.5);
  std::ostringstream os;
  os << s.to_table(1);
  EXPECT_NE(os.str().find("2.5"), std::string::npos);
  EXPECT_NE(os.str().find("-"), std::string::npos);
}

TEST(SeriesCollectorTest, FractionalXsKeepDecimals) {
  SeriesCollector s("ratio", {"a"});
  s.add(0.05, "a", 1.0);
  s.add(2.0, "a", 1.0);
  std::ostringstream os;
  os << s.to_table(1);
  EXPECT_NE(os.str().find("0.05"), std::string::npos);
  // whole numbers print without decimals (right-aligned cell " 2 |")
  EXPECT_NE(os.str().find(" 2 |"), std::string::npos);
  EXPECT_EQ(os.str().find("2.00 |"), std::string::npos);
}

TEST(SeriesCollectorTest, CsvRoundTrip) {
  SeriesCollector s("x", {"a"});
  s.add(1.0, "a", 2.0);
  s.add(2.0, "a", 4.0);
  const std::string path = ::testing::TempDir() + "series_test.csv";
  s.write_csv(path, 1);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,a");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.0");
  std::getline(in, line);
  EXPECT_EQ(line, "2,4.0");
  std::remove(path.c_str());
}

TEST(SeriesCollectorTest, AddSummaryFoldsAggregates) {
  Summary pre;
  pre.add(10.0);
  pre.add(30.0);

  SeriesCollector s("x", {"a"});
  s.add(1.0, "a", 2.0);
  s.add_summary(1.0, "a", pre);
  EXPECT_EQ(s.count(1.0, "a"), 3u);
  EXPECT_DOUBLE_EQ(s.mean(1.0, "a"), 14.0);

  // Empty summaries are a no-op — they must not materialize a cell.
  s.add_summary(9.0, "a", Summary{});
  EXPECT_EQ(s.count(9.0, "a"), 0u);
  EXPECT_EQ(s.xs(), (std::vector<double>{1.0}));
  EXPECT_THROW(s.add_summary(1.0, "zzz", pre), ModelError);
}

TEST(SeriesCollectorTest, MergeCombinesCellsAndUnionsSeries) {
  SeriesCollector a("x", {"alg1"});
  a.add(1.0, "alg1", 10.0);
  a.add(2.0, "alg1", 20.0);

  SeriesCollector b("x", {"alg1", "alg2"});
  b.add(1.0, "alg1", 30.0);
  b.add(3.0, "alg2", 7.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(1.0, "alg1"), 20.0);  // (10 + 30) / 2
  EXPECT_DOUBLE_EQ(a.mean(2.0, "alg1"), 20.0);
  EXPECT_DOUBLE_EQ(a.mean(3.0, "alg2"), 7.0);
  EXPECT_EQ(a.series_names(),
            (std::vector<std::string>{"alg1", "alg2"}));
  EXPECT_EQ(a.xs(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SeriesCollectorTest, ResampleSnapsToBucketGrid) {
  SeriesCollector s("rate", {"a"});
  s.add(0.98, "a", 1.0);
  s.add(1.02, "a", 3.0);
  s.add(2.49, "a", 5.0);

  const SeriesCollector r = s.resample(1.0);
  EXPECT_EQ(r.xs(), (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(r.mean(1.0, "a"), 2.0);  // 0.98 and 1.02 merge
  EXPECT_DOUBLE_EQ(r.mean(2.0, "a"), 5.0);
  EXPECT_EQ(r.count(1.0, "a"), 2u);
  EXPECT_THROW(s.resample(0.0), ModelError);
}

}  // namespace
}  // namespace mecsched::metrics
