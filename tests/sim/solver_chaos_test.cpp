// Determinism contract of the solver-chaos harness: fault decisions are a
// pure hash of (seed, engine, rows, cols, iteration), so the same seed
// produces the same injected faults and the same degraded solver results
// whatever order — or thread — the solves run in.
#include "sim/solver_chaos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/chaos_hook.h"
#include "common/error.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/solution.h"

namespace mecsched::sim {
namespace {

lp::Problem small_lp(double rhs) {
  lp::Problem p;
  const auto x = p.add_variable(-3.0, 0.0, lp::kInfinity);
  const auto y = p.add_variable(-5.0, 0.0, lp::kInfinity);
  p.add_constraint({{x, 1.0}}, lp::Relation::kLessEqual, rhs);
  p.add_constraint({{y, 2.0}}, lp::Relation::kLessEqual, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, lp::Relation::kLessEqual, 18.0);
  return p;
}

TEST(SolverChaosConfigTest, RejectsBadProbabilities) {
  SolverChaosConfig bad;
  bad.stall_prob = 1.5;
  EXPECT_THROW(SolverChaos{bad}, ModelError);
  bad.stall_prob = -0.1;
  EXPECT_THROW(SolverChaos{bad}, ModelError);
  SolverChaosConfig sum;
  sum.stall_prob = 0.5;
  sum.nan_prob = 0.4;
  sum.cancel_prob = 0.3;
  EXPECT_THROW(SolverChaos{sum}, ModelError);
}

TEST(SolverChaosTest, DisarmedHookInjectsNothing) {
  EXPECT_FALSE(chaos::armed());
  EXPECT_EQ(chaos::probe("simplex", 3, 5, 0), chaos::Action::kNone);
}

TEST(SolverChaosTest, ChaosArmedIsScoped) {
  SolverChaosConfig cfg;
  SolverChaos chaos(cfg);
  {
    const ChaosArmed armed(chaos);
    EXPECT_TRUE(chaos::armed());
  }
  EXPECT_FALSE(chaos::armed());
}

TEST(SolverChaosTest, ForcedFaultCancelsAtTheNamedIteration) {
  SolverChaosConfig cfg;
  cfg.forced.push_back({"simplex", 1, SolverFaultKind::kCancel});
  SolverChaos chaos(cfg);
  const ChaosArmed armed(chaos);

  const lp::Solution s = lp::SimplexSolver().solve(small_lp(4.0));
  EXPECT_EQ(s.status, lp::SolveStatus::kDeadline);
  ASSERT_EQ(chaos.injected(), 1u);
  const std::vector<SolverFaultRecord> trace = chaos.trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].engine, "simplex");
  EXPECT_EQ(trace[0].iteration, 1u);
  EXPECT_EQ(trace[0].kind, SolverFaultKind::kCancel);
  EXPECT_EQ(trace[0].count, 1u);
}

TEST(SolverChaosTest, CertainStallFiresImmediately) {
  SolverChaosConfig cfg;
  cfg.stall_prob = 1.0;
  SolverChaos chaos(cfg);
  const ChaosArmed armed(chaos);
  const lp::Solution s = lp::SimplexSolver().solve(small_lp(4.0));
  EXPECT_EQ(s.status, lp::SolveStatus::kDeadline);
  const std::vector<SolverFaultRecord> trace = chaos.trace();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace[0].iteration, 0u);
  EXPECT_EQ(trace[0].kind, SolverFaultKind::kStall);
}

TEST(SolverChaosTest, SameSeedSameFaultsSameStatuses) {
  const auto drill = [](std::vector<lp::SolveStatus>& statuses) {
    SolverChaosConfig cfg;
    cfg.seed = 42;
    cfg.cancel_prob = 0.25;
    SolverChaos chaos(cfg);
    const ChaosArmed armed(chaos);
    for (double rhs = 1.0; rhs <= 6.0; rhs += 1.0) {
      statuses.push_back(lp::SimplexSolver().solve(small_lp(rhs)).status);
    }
    return chaos.trace();
  };
  std::vector<lp::SolveStatus> statuses_a, statuses_b;
  const std::vector<SolverFaultRecord> trace_a = drill(statuses_a);
  const std::vector<SolverFaultRecord> trace_b = drill(statuses_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(statuses_a, statuses_b);
  EXPECT_FALSE(trace_a.empty());  // 0.25/site over many sites must fire
}

TEST(SolverChaosTest, TraceIsIndependentOfSolveOrder) {
  const auto drill = [](bool reversed) {
    SolverChaosConfig cfg;
    cfg.seed = 7;
    cfg.stall_prob = 0.2;
    cfg.nan_prob = 0.0;  // NaN faults throw; keep the drill pure-status
    SolverChaos chaos(cfg);
    const ChaosArmed armed(chaos);
    std::vector<double> rhs = {1.0, 2.0, 3.0, 4.0, 5.0};
    if (reversed) std::reverse(rhs.begin(), rhs.end());
    for (const double r : rhs) {
      (void)lp::SimplexSolver().solve(small_lp(r));
    }
    return chaos.trace();
  };
  EXPECT_EQ(drill(false), drill(true));
}

TEST(SolverChaosTest, FaultKindNamesAreStable) {
  EXPECT_EQ(to_string(SolverFaultKind::kStall), "stall");
  EXPECT_EQ(to_string(SolverFaultKind::kNanPoison), "nan-poison");
  EXPECT_EQ(to_string(SolverFaultKind::kCancel), "cancel");
  EXPECT_EQ(to_string(SolverFaultKind::kSpuriousError), "spurious-error");
}

}  // namespace
}  // namespace mecsched::sim
