// FaultSchedule unit tests plus its integration with the discrete-event
// simulator: recovery re-enables hardware, station outages black out a
// cluster's offload path, link degradation stretches radio stages, and the
// legacy single-failure SimOptions fields keep their historical meaning.
#include <gtest/gtest.h>

#include "common/error.h"

#include "assign/lp_hta.h"
#include "sim/fault_schedule.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace mecsched::sim {
namespace {

using assign::Assignment;
using assign::Decision;
using assign::HtaInstance;

workload::Scenario scenario(std::uint64_t seed, std::size_t tasks = 20) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  return workload::make_scenario(cfg);
}

TEST(FaultScheduleTest, StateQueriesReplayThePrefix) {
  const FaultSchedule s({
      {1.0, FaultKind::kDeviceFail, 3, 1.0},
      {2.0, FaultKind::kDeviceRecover, 3, 1.0},
      {1.5, FaultKind::kStationFail, 0, 1.0},
      {4.0, FaultKind::kLinkDegrade, 5, 0.5},
      {6.0, FaultKind::kLinkRestore, 5, 1.0},
  });
  EXPECT_TRUE(s.device_up(3, 0.99));
  EXPECT_FALSE(s.device_up(3, 1.0));  // an event at t is visible at t
  EXPECT_FALSE(s.device_up(3, 1.99));
  EXPECT_TRUE(s.device_up(3, 2.0));
  EXPECT_TRUE(s.device_up(0, 100.0));  // untouched device

  EXPECT_TRUE(s.station_up(0, 1.49));
  EXPECT_FALSE(s.station_up(0, 1.5));
  EXPECT_FALSE(s.station_up(0, 100.0));  // never recovers
  EXPECT_TRUE(s.station_up(1, 100.0));

  EXPECT_DOUBLE_EQ(s.link_factor(5, 3.9), 1.0);
  EXPECT_DOUBLE_EQ(s.link_factor(5, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(s.link_factor(5, 6.0), 1.0);
}

TEST(FaultScheduleTest, EventsAreSortedAndCounted) {
  const FaultSchedule s({
      {5.0, FaultKind::kDeviceFail, 1, 1.0},
      {1.0, FaultKind::kStationFail, 0, 1.0},
      {3.0, FaultKind::kDeviceFail, 2, 1.0},
  });
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.events()[0].time_s, 1.0);
  EXPECT_DOUBLE_EQ(s.events()[1].time_s, 3.0);
  EXPECT_DOUBLE_EQ(s.events()[2].time_s, 5.0);
  EXPECT_EQ(s.device_failures(), 2u);
  EXPECT_EQ(s.station_failures(), 1u);
}

TEST(FaultScheduleTest, EventsBetweenIsHalfOpen) {
  const FaultSchedule s({
      {1.0, FaultKind::kDeviceFail, 0, 1.0},
      {2.0, FaultKind::kDeviceRecover, 0, 1.0},
      {3.0, FaultKind::kDeviceFail, 1, 1.0},
  });
  const auto between = s.events_between(1.0, 3.0);  // (1, 3]
  ASSERT_EQ(between.size(), 2u);
  EXPECT_DOUBLE_EQ(between[0].time_s, 2.0);
  EXPECT_DOUBLE_EQ(between[1].time_s, 3.0);
  EXPECT_TRUE(s.events_between(3.0, 10.0).empty());
}

TEST(FaultScheduleTest, ValidatesEventsAndTargets) {
  EXPECT_THROW(FaultSchedule({{-1.0, FaultKind::kDeviceFail, 0, 1.0}}),
               ModelError);
  EXPECT_THROW(FaultSchedule({{0.0, FaultKind::kLinkDegrade, 0, 0.0}}),
               ModelError);
  EXPECT_THROW(FaultSchedule({{0.0, FaultKind::kLinkDegrade, 0, 1.5}}),
               ModelError);

  const FaultSchedule device_oob({{0.0, FaultKind::kDeviceFail, 9, 1.0}});
  EXPECT_NO_THROW(device_oob.validate_against(10, 1));
  EXPECT_THROW(device_oob.validate_against(9, 1), ModelError);
  const FaultSchedule station_oob({{0.0, FaultKind::kStationFail, 2, 1.0}});
  EXPECT_THROW(station_oob.validate_against(10, 2), ModelError);
}

TEST(FaultScheduleTest, MergeAndSingleFailure) {
  const FaultSchedule a = FaultSchedule::single_device_failure(4, 2.0);
  const FaultSchedule b({{1.0, FaultKind::kStationFail, 0, 1.0}});
  const FaultSchedule m = a.merged_with(b);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.events()[0].time_s, 1.0);
  EXPECT_FALSE(m.device_up(4, 2.0));
  EXPECT_FALSE(m.station_up(0, 1.0));
}

TEST(FaultSimTest, RecoveryReenablesTheDevice) {
  const auto s = scenario(11);
  const HtaInstance inst(s.topology, s.tasks);
  Assignment all_local;
  all_local.decisions.assign(inst.num_tasks(), Decision::kLocal);

  // Down during [0, 5); every task is released at t=10, after recovery.
  SimOptions opts;
  opts.faults = FaultSchedule({
      {0.0, FaultKind::kDeviceFail, 0, 1.0},
      {5.0, FaultKind::kDeviceRecover, 0, 1.0},
  });
  opts.release_times.assign(inst.num_tasks(), 10.0);
  const SimResult r = simulate(inst, all_local, opts);
  EXPECT_EQ(r.failed_tasks, 0u);

  // Without the recovery the device's tasks die.
  SimOptions forever;
  forever.faults = FaultSchedule({{0.0, FaultKind::kDeviceFail, 0, 1.0}});
  forever.release_times.assign(inst.num_tasks(), 10.0);
  const SimResult broken = simulate(inst, all_local, forever);
  std::size_t touches_dev0 = 0;
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    if (inst.task(t).id.user == 0 ||
        (inst.task(t).external_bytes > 0.0 &&
         inst.task(t).external_owner == 0)) {
      ++touches_dev0;
    }
  }
  EXPECT_EQ(broken.failed_tasks, touches_dev0);
}

TEST(FaultSimTest, StationOutageKillsItsClustersOffload) {
  const auto s = scenario(12);
  const HtaInstance inst(s.topology, s.tasks);
  Assignment all_edge;
  all_edge.decisions.assign(inst.num_tasks(), Decision::kEdge);

  SimOptions opts;
  opts.faults = FaultSchedule({{0.0, FaultKind::kStationFail, 0, 1.0}});
  const SimResult r = simulate(inst, all_edge, opts);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    const mec::Task& task = inst.task(t);
    const bool via_station0 =
        s.topology.device(task.id.user).base_station == 0 ||
        (task.external_bytes > 0.0 &&
         s.topology.device(task.external_owner).base_station == 0);
    if (!via_station0) {
      EXPECT_FALSE(r.timelines[t].failed) << "task " << t;
    }
    if (s.topology.device(task.id.user).base_station == 0) {
      EXPECT_TRUE(r.timelines[t].failed) << "task " << t;
    }
  }
}

TEST(FaultSimTest, LinkDegradationStretchesRadioStages) {
  const auto s = scenario(13, 8);
  const HtaInstance inst(s.topology, s.tasks);
  Assignment all_cloud;
  all_cloud.decisions.assign(inst.num_tasks(), Decision::kCloud);
  const SimResult clean = simulate(inst, all_cloud);

  SimOptions opts;
  std::vector<FaultEvent> degrade;
  for (std::size_t d = 0; d < s.topology.num_devices(); ++d) {
    degrade.push_back({0.0, FaultKind::kLinkDegrade, d, 0.5});
  }
  opts.faults = FaultSchedule(degrade);
  const SimResult r = simulate(inst, all_cloud, opts);
  EXPECT_EQ(r.failed_tasks, 0u);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    // Cloud placements always carry radio stages (the issuer uploads its α
    // and downloads the result), so a halved link must strictly hurt.
    EXPECT_GT(r.timelines[t].latency_s(),
              clean.timelines[t].latency_s() * (1.0 + 1e-9))
        << "task " << t;
    EXPECT_GT(r.timelines[t].energy_j, clean.timelines[t].energy_j)
        << "task " << t;
  }

  // Restored before release: costs match the clean run exactly.
  SimOptions restored;
  std::vector<FaultEvent> cycle = degrade;
  for (std::size_t d = 0; d < s.topology.num_devices(); ++d) {
    cycle.push_back({1.0, FaultKind::kLinkRestore, d, 1.0});
  }
  restored.faults = FaultSchedule(cycle);
  restored.release_times.assign(inst.num_tasks(), 2.0);
  const SimResult after = simulate(inst, all_cloud, restored);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    EXPECT_NEAR(after.timelines[t].latency_s(), clean.timelines[t].latency_s(),
                1e-9 * (1.0 + clean.timelines[t].latency_s()));
  }
}

TEST(FaultSimTest, LegacyFieldsMergeIntoTheSchedule) {
  const auto s = scenario(14);
  const HtaInstance inst(s.topology, s.tasks);
  Assignment all_local;
  all_local.decisions.assign(inst.num_tasks(), Decision::kLocal);

  SimOptions legacy;
  legacy.failed_device = 2;
  legacy.failure_time_s = 0.0;

  SimOptions modern;
  modern.faults = FaultSchedule::single_device_failure(2, 0.0);

  const SimResult a = simulate(inst, all_local, legacy);
  const SimResult b = simulate(inst, all_local, modern);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    EXPECT_EQ(a.timelines[t].failed, b.timelines[t].failed) << "task " << t;
  }
}

TEST(FaultSimTest, ScheduleTargetsAreValidated) {
  const auto s = scenario(15, 5);
  const HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);
  SimOptions opts;
  opts.faults = FaultSchedule({{0.0, FaultKind::kDeviceFail, 99, 1.0}});
  EXPECT_THROW(simulate(inst, plan, opts), ModelError);
}

}  // namespace
}  // namespace mecsched::sim
