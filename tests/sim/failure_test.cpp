// Failure-injection and release-time simulator tests, plus the recovery
// utility: kill a device mid-run, verify the blast radius, repair the
// plan, and confirm the repaired plan survives the same failure.
#include <gtest/gtest.h>

#include "common/error.h"

#include "assign/lp_hta.h"
#include "assign/recovery.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace mecsched::sim {
namespace {

using assign::Assignment;
using assign::Decision;
using assign::HtaInstance;

workload::Scenario scenario(std::uint64_t seed, std::size_t tasks = 30) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  return workload::make_scenario(cfg);
}

TEST(ReleaseTimesTest, TasksStartAtTheirRelease) {
  const auto s = scenario(1, 12);
  const HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);

  SimOptions opts;
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    opts.release_times.push_back(0.25 * static_cast<double>(t));
  }
  const SimResult r = simulate(inst, plan, opts);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    if (!r.timelines[t].placed) continue;
    EXPECT_NEAR(r.timelines[t].start_s, opts.release_times[t], 1e-12);
    // without contention the per-task latency is release-invariant
    const auto p = assign::to_placement(plan.decisions[t]);
    EXPECT_NEAR(r.timelines[t].latency_s(), inst.latency(t, p),
                1e-9 * (1.0 + inst.latency(t, p)));
  }
}

TEST(ReleaseTimesTest, WrongLengthRejected) {
  const auto s = scenario(2, 5);
  const HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);
  SimOptions opts;
  opts.release_times = {0.0, 1.0};  // 2 != 5
  EXPECT_THROW(simulate(inst, plan, opts), mecsched::ModelError);
}

TEST(FailureTest, ImmediateFailureKillsEverythingOnTheDevice) {
  const auto s = scenario(3, 20);
  const HtaInstance inst(s.topology, s.tasks);
  // Everything local: every task of device D must die when D dies at t=0.
  Assignment all_local;
  all_local.decisions.assign(inst.num_tasks(), Decision::kLocal);

  SimOptions opts;
  opts.failed_device = 0;
  opts.failure_time_s = 0.0;
  const SimResult r = simulate(inst, all_local, opts);
  std::size_t expected_failed = 0;
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    const bool uses_dev0 = inst.task(t).id.user == 0 ||
                           (inst.task(t).external_bytes > 0.0 &&
                            inst.task(t).external_owner == 0);
    if (uses_dev0) ++expected_failed;
    EXPECT_EQ(r.timelines[t].failed, uses_dev0) << "task " << t;
  }
  EXPECT_EQ(r.failed_tasks, expected_failed);
}

TEST(FailureTest, LateFailureHurtsNobody) {
  const auto s = scenario(4, 20);
  const HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);
  SimOptions opts;
  opts.failed_device = 3;
  opts.failure_time_s = 1e9;  // long after everything finished
  const SimResult r = simulate(inst, plan, opts);
  EXPECT_EQ(r.failed_tasks, 0u);
}

TEST(FailureTest, CloudAndEdgeTasksOfOtherDevicesSurvive) {
  const auto s = scenario(5, 20);
  const HtaInstance inst(s.topology, s.tasks);
  Assignment all_cloud;
  all_cloud.decisions.assign(inst.num_tasks(), Decision::kCloud);
  SimOptions opts;
  opts.failed_device = 1;
  opts.failure_time_s = 0.0;
  const SimResult r = simulate(inst, all_cloud, opts);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    const bool touches = inst.task(t).id.user == 1 ||
                         (inst.task(t).external_bytes > 0.0 &&
                          inst.task(t).external_owner == 1);
    EXPECT_EQ(r.timelines[t].failed, touches) << "task " << t;
  }
}

TEST(FailureTest, MidRunFailureSparesInFlightStages) {
  // A failure strictly after a task's only device stage started lets the
  // task finish.
  const auto s = scenario(6, 10);
  const HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);
  const SimResult clean = simulate(inst, plan);

  SimOptions opts;
  opts.failed_device = 2;
  opts.failure_time_s = 1e-6;  // just after t=0: in-flight stages survive
  const SimResult r = simulate(inst, plan, opts);
  // Tasks that begin a stage on device 2 exactly at t=0 keep running; only
  // those whose device-2 stages start later die. Either way, failures are
  // a subset of the tasks that touch device 2.
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    if (!r.timelines[t].failed) continue;
    const bool touches = inst.task(t).id.user == 2 ||
                         inst.task(t).external_owner == 2;
    EXPECT_TRUE(touches) << "task " << t;
  }
  EXPECT_LE(r.failed_tasks, clean.timelines.size());
}

TEST(RecoveryTest, RepairedPlanSurvivesTheSameFailure) {
  const auto s = scenario(7, 30);
  const HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);

  const std::size_t dead = 4;
  const auto repaired =
      assign::replan_after_device_failure(inst, plan, dead);

  SimOptions opts;
  opts.failed_device = dead;
  opts.failure_time_s = 0.0;
  const SimResult r = simulate(inst, repaired.assignment, opts);
  EXPECT_EQ(r.failed_tasks, 0u);  // nothing left touches the dead device

  // blast radius accounting
  std::size_t expected_lost = 0;
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    if (plan.decisions[t] == Decision::kCancelled) continue;
    if (inst.task(t).id.user == dead ||
        (inst.task(t).external_bytes > 0.0 &&
         inst.task(t).external_owner == dead)) {
      ++expected_lost;
    }
  }
  EXPECT_EQ(repaired.lost_issued + repaired.lost_data, expected_lost);
}

TEST(RecoveryTest, ValidatesInputs) {
  const auto s = scenario(8, 5);
  const HtaInstance inst(s.topology, s.tasks);
  const auto plan = assign::LpHta().assign(inst);
  EXPECT_THROW(assign::replan_after_device_failure(inst, plan, 99),
               ModelError);
  Assignment short_plan;
  EXPECT_THROW(assign::replan_after_device_failure(inst, short_plan, 0),
               ModelError);
}

}  // namespace
}  // namespace mecsched::sim
