#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "assign/baselines.h"
#include "assign/hgos.h"
#include "assign/lp_hta.h"
#include "workload/scenario.h"

namespace mecsched::sim {
namespace {

using assign::Assignment;
using assign::Decision;
using assign::HtaInstance;

workload::Scenario scenario(std::uint64_t seed, std::size_t tasks = 40) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.num_devices = 15;
  cfg.num_base_stations = 3;
  return workload::make_scenario(cfg);
}

Assignment uniform(const HtaInstance& inst, Decision d) {
  Assignment a;
  a.decisions.assign(inst.num_tasks(), d);
  return a;
}

// The core validation: with no contention, the simulator must reproduce
// the analytic Sec. II latency and energy of every task exactly.
class SimVsAnalytic : public ::testing::TestWithParam<int> {};

TEST_P(SimVsAnalytic, MatchesCostModelWithoutContention) {
  const auto s = scenario(static_cast<std::uint64_t>(GetParam()) + 1);
  const HtaInstance inst(s.topology, s.tasks);

  for (Decision d : {Decision::kLocal, Decision::kEdge, Decision::kCloud}) {
    const Assignment a = uniform(inst, d);
    const SimResult r = simulate(inst, a);
    ASSERT_EQ(r.timelines.size(), inst.num_tasks());
    for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
      const auto p = assign::to_placement(d);
      EXPECT_NEAR(r.timelines[t].latency_s(), inst.latency(t, p),
                  1e-9 * (1.0 + inst.latency(t, p)))
          << "task " << t << " placement " << mec::to_string(p);
      EXPECT_NEAR(r.timelines[t].energy_j, inst.energy(t, p),
                  1e-9 * (1.0 + inst.energy(t, p)))
          << "task " << t << " placement " << mec::to_string(p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimVsAnalytic, ::testing::Range(0, 5));

TEST(SimulatorTest, MixedAssignmentFromLpHtaMatchesEvaluator) {
  const auto s = scenario(42);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = assign::LpHta().assign(inst);
  const SimResult r = simulate(inst, a);

  double expected_energy = 0.0;
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    if (a.decisions[t] == Decision::kCancelled) {
      EXPECT_FALSE(r.timelines[t].placed);
      continue;
    }
    expected_energy += inst.energy(t, assign::to_placement(a.decisions[t]));
  }
  EXPECT_NEAR(r.total_energy_j, expected_energy,
              1e-6 * (1.0 + expected_energy));
}

TEST(SimulatorTest, ContentionNeverBeatsTheAnalyticModel) {
  const auto s = scenario(7, 60);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = assign::Hgos().assign(inst);

  SimOptions ideal_opts, loaded_opts;
  loaded_opts.model_contention = true;
  const SimResult ideal = simulate(inst, a, ideal_opts);
  const SimResult loaded = simulate(inst, a, loaded_opts);
  // Queueing can only delay; energy (work done) is identical.
  EXPECT_GE(loaded.makespan_s, ideal.makespan_s - 1e-9);
  EXPECT_NEAR(loaded.total_energy_j, ideal.total_energy_j, 1e-6);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    if (!ideal.timelines[t].placed) continue;
    EXPECT_GE(loaded.timelines[t].latency_s(),
              ideal.timelines[t].latency_s() - 1e-9)
        << "task " << t;
  }
}

TEST(SimulatorTest, ContentionSerializesSharedDeviceCpu) {
  // Two local tasks on the same device must run back to back.
  workload::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.num_devices = 1;
  cfg.num_base_stations = 1;
  cfg.num_tasks = 2;
  cfg.external_ratio_max = 0.0;  // keep them pure-compute
  const auto s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  Assignment a = uniform(inst, Decision::kLocal);
  SimOptions contention;
  contention.model_contention = true;
  const SimResult r = simulate(inst, a, contention);
  const double l0 = inst.latency(0, mec::Placement::kLocal);
  const double l1 = inst.latency(1, mec::Placement::kLocal);
  EXPECT_NEAR(r.makespan_s, l0 + l1, 1e-9 * (1.0 + l0 + l1));
}

TEST(SimulatorTest, CancelledTasksConsumeNothing) {
  const auto s = scenario(9, 10);
  const HtaInstance inst(s.topology, s.tasks);
  Assignment a = uniform(inst, Decision::kCancelled);
  const SimResult r = simulate(inst, a);
  EXPECT_DOUBLE_EQ(r.total_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 0.0);
  EXPECT_EQ(r.events_processed, 0u);
}

TEST(SimulatorTest, MakespanIsMaxTaskFinish) {
  const auto s = scenario(11, 20);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment a = uniform(inst, Decision::kEdge);
  const SimResult r = simulate(inst, a);
  double mx = 0.0;
  for (const auto& tl : r.timelines) mx = std::max(mx, tl.finish_s);
  EXPECT_DOUBLE_EQ(r.makespan_s, mx);
}

}  // namespace
}  // namespace mecsched::sim
