#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mecsched::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  const double last = q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(last, 3.0);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueueTest, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i](double) { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](double now) {
    ++fired;
    q.schedule(now + 1.0, [&](double) { ++fired; });
  });
  const double last = q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(last, 2.0);
}

TEST(EventQueueTest, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [&](double) {
    EXPECT_THROW(q.schedule(1.0, [](double) {}), ModelError);
  });
  q.run();
}

TEST(EventQueueTest, EmptyRunReturnsZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.run(), 0.0);
}

TEST(EventQueueTest, HandlesLargeEventVolumes) {
  // 100k events in shuffled time order must fire in sorted order.
  EventQueue q;
  mecsched::Rng rng(5);
  std::vector<double> times;
  for (int i = 0; i < 100'000; ++i) times.push_back(rng.uniform(0.0, 1e6));
  double last = -1.0;
  bool ordered = true;
  for (double t : times) {
    q.schedule(t, [&last, &ordered](double now) {
      ordered = ordered && now >= last;
      last = now;
    });
  }
  q.run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(q.processed(), 100'000u);
}

TEST(ResourceTest, FifoSerialization) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 2.0), 0.0);   // starts immediately
  EXPECT_DOUBLE_EQ(r.acquire(1.0, 3.0), 2.0);   // queued behind the first
  EXPECT_DOUBLE_EQ(r.acquire(10.0, 1.0), 10.0); // idle gap, starts at arrival
  EXPECT_DOUBLE_EQ(r.busy_time(), 6.0);
  EXPECT_DOUBLE_EQ(r.free_at(), 11.0);
}

TEST(ResourceTest, RejectsNegativeDuration) {
  Resource r;
  EXPECT_THROW(r.acquire(0.0, -1.0), ModelError);
}

}  // namespace
}  // namespace mecsched::sim
