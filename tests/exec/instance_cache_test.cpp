#include "exec/instance_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "assign/hta_instance.h"
#include "common/error.h"
#include "workload/scenario.h"

namespace mecsched::exec {
namespace {

workload::Scenario small_scenario(std::uint64_t seed, std::size_t tasks = 12) {
  workload::ScenarioConfig cfg;
  cfg.num_tasks = tasks;
  cfg.num_devices = 5;
  cfg.num_base_stations = 2;
  cfg.seed = seed;
  return workload::make_scenario(cfg);
}

assign::Assignment plan_of(std::size_t n, assign::Decision d) {
  assign::Assignment a;
  a.decisions.assign(n, d);
  return a;
}

TEST(FingerprintTest, IdenticalInstancesAgree) {
  const workload::Scenario a = small_scenario(11);
  const workload::Scenario b = small_scenario(11);
  const assign::HtaInstance ia(a.topology, a.tasks);
  const assign::HtaInstance ib(b.topology, b.tasks);
  EXPECT_EQ(fingerprint(ia), fingerprint(ib));
}

TEST(FingerprintTest, SeedAndSizeChangeTheFingerprint) {
  const workload::Scenario base = small_scenario(11);
  const workload::Scenario reseeded = small_scenario(12);
  const workload::Scenario bigger = small_scenario(11, 13);
  const assign::HtaInstance i0(base.topology, base.tasks);
  const assign::HtaInstance i1(reseeded.topology, reseeded.tasks);
  const assign::HtaInstance i2(bigger.topology, bigger.tasks);
  EXPECT_NE(fingerprint(i0), fingerprint(i1));
  EXPECT_NE(fingerprint(i0), fingerprint(i2));
}

TEST(FingerprintTest, DeadlineTweakChangesTheFingerprint) {
  const workload::Scenario s = small_scenario(11);
  auto tweaked = s.tasks;
  tweaked[0].deadline_s += 0.125;
  const assign::HtaInstance before(s.topology, s.tasks);
  const assign::HtaInstance after(s.topology, tweaked);
  EXPECT_NE(fingerprint(before), fingerprint(after));
}

TEST(MixTest, OrderAndStringSensitivity) {
  EXPECT_NE(mix(1, 2), mix(2, 1));
  EXPECT_NE(hash_string("LP-HTA"), hash_string("HGOS"));
  EXPECT_EQ(hash_string("LP-HTA"), hash_string("LP-HTA"));
}

TEST(InstanceCacheTest, MissThenHitReturnsTheStoredPlan) {
  InstanceCache cache(4);
  EXPECT_EQ(cache.find(42), nullptr);
  cache.insert(42, plan_of(3, assign::Decision::kEdge));
  const auto hit = cache.find(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->decisions.size(), 3u);
  EXPECT_EQ(hit->decisions[0], assign::Decision::kEdge);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(InstanceCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  InstanceCache cache(2);
  cache.insert(1, plan_of(1, assign::Decision::kLocal));
  cache.insert(2, plan_of(1, assign::Decision::kEdge));
  // Touch 1 so 2 becomes the LRU entry.
  ASSERT_NE(cache.find(1), nullptr);
  cache.insert(3, plan_of(1, assign::Decision::kCloud));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);  // evicted
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(InstanceCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  InstanceCache cache(2);
  cache.insert(1, plan_of(1, assign::Decision::kLocal));
  cache.insert(1, plan_of(2, assign::Decision::kCloud));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.find(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->decisions.size(), 2u);
}

TEST(InstanceCacheTest, WarmHintsTrackTheLatestFamilySolution) {
  InstanceCache cache(4);
  const std::uint64_t family = hash_string("LP-HTA");
  EXPECT_EQ(cache.warm_hint(family), nullptr);
  cache.store_warm(family, std::make_shared<const assign::Assignment>(
                               plan_of(2, assign::Decision::kLocal)));
  cache.store_warm(family, std::make_shared<const assign::Assignment>(
                               plan_of(5, assign::Decision::kCloud)));
  const auto hint = cache.warm_hint(family);
  ASSERT_NE(hint, nullptr);
  EXPECT_EQ(hint->decisions.size(), 5u);
  EXPECT_EQ(cache.warm_hint(family + 1), nullptr);
}

TEST(InstanceCacheTest, ClearDropsEntriesAndHints) {
  InstanceCache cache(4);
  cache.insert(7, plan_of(1, assign::Decision::kLocal));
  cache.store_warm(1, std::make_shared<const assign::Assignment>(
                          plan_of(1, assign::Decision::kLocal)));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.warm_hint(1), nullptr);
}

TEST(InstanceCacheTest, ZeroCapacityIsRejected) {
  EXPECT_THROW(InstanceCache(0), ModelError);
}

TEST(InstanceCacheTest, ContentsFingerprintIgnoresInsertionOrder) {
  // Same entries, opposite insertion order (and different bucket history):
  // the digest must agree because it sorts keys before hashing.
  InstanceCache forward(64);
  InstanceCache backward(64);
  for (std::uint64_t k = 1; k <= 20; ++k) {
    forward.insert(k, plan_of(3, assign::Decision::kEdge));
    forward.store_warm(100 + k, std::make_shared<const assign::Assignment>(
                                    plan_of(2, assign::Decision::kLocal)));
  }
  for (std::uint64_t k = 20; k >= 1; --k) {
    backward.insert(k, plan_of(3, assign::Decision::kEdge));
    backward.store_warm(100 + k, std::make_shared<const assign::Assignment>(
                                     plan_of(2, assign::Decision::kLocal)));
  }
  EXPECT_EQ(forward.contents_fingerprint(), backward.contents_fingerprint());
}

TEST(InstanceCacheTest, ContentsFingerprintSeesEntriesAndPlans) {
  InstanceCache cache(8);
  const std::uint64_t empty = cache.contents_fingerprint();
  cache.insert(1, plan_of(2, assign::Decision::kLocal));
  const std::uint64_t one = cache.contents_fingerprint();
  EXPECT_NE(empty, one);
  // Re-inserting a different plan under the same key changes the digest.
  cache.insert(1, plan_of(2, assign::Decision::kCloud));
  EXPECT_NE(one, cache.contents_fingerprint());
  // Warm hints participate too.
  cache.store_warm(9, std::make_shared<const assign::Assignment>(
                          plan_of(1, assign::Decision::kEdge)));
  const std::uint64_t with_warm = cache.contents_fingerprint();
  EXPECT_NE(with_warm, one);
  cache.clear();
  EXPECT_EQ(cache.contents_fingerprint(), empty);
}

}  // namespace
}  // namespace mecsched::exec
