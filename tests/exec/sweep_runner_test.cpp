#include "exec/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace mecsched::exec {
namespace {

// A cell result that exercises both determinism inputs: the grid index and
// the per-cell RNG substream.
std::vector<double> run_cells(std::size_t jobs, std::size_t cells) {
  SweepOptions options;
  options.jobs = jobs;
  options.master_seed = 99;
  SweepRunner runner(options);
  return runner.run<double>(cells, [](CellContext& ctx) {
    Rng rng = ctx.rng();
    return static_cast<double>(ctx.index()) * 1000.0 + rng.uniform(0.0, 1.0);
  });
}

TEST(SweepRunnerTest, ResultsAreInGridOrderAtEveryJobCount) {
  const std::vector<double> serial = run_cells(1, 64);
  ASSERT_EQ(serial.size(), 64u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GE(serial[i], static_cast<double>(i) * 1000.0);
    EXPECT_LT(serial[i], static_cast<double>(i) * 1000.0 + 1.0);
  }
  // Bit-identical across pool widths: cells only read (index, substream).
  EXPECT_EQ(run_cells(2, 64), serial);
  EXPECT_EQ(run_cells(8, 64), serial);
}

TEST(SweepRunnerTest, CellSeedsMatchTheMasterSubstreams) {
  SweepOptions options;
  options.master_seed = 7;
  SweepRunner runner(options);
  const std::vector<std::uint64_t> seeds = runner.run<std::uint64_t>(
      5, [](CellContext& ctx) { return ctx.seed(); });
  const Rng master(7);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], master.substream_seed(i));
  }
}

TEST(SweepRunnerTest, ShardMetricsMergeIntoTheGlobalRegistry) {
  obs::Registry::global().reset();
  SweepOptions options;
  options.jobs = 4;
  SweepRunner runner(options);
  runner.run<int>(10, [](CellContext& ctx) {
    ctx.registry().counter("test.sweep.cells").add();
    ctx.registry().histogram("test.sweep.value")
        .observe(static_cast<double>(ctx.index()));
    return 0;
  });
  EXPECT_EQ(obs::Registry::global().counter("test.sweep.cells").value(), 10u);
  const Summary s =
      obs::Registry::global().histogram("test.sweep.value").summary();
  EXPECT_EQ(s.count(), 10u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  // The runner's own per-cell timing histogram merged too.
  EXPECT_EQ(obs::Registry::global()
                .histogram("exec.sweep.cell_seconds")
                .summary()
                .count(),
            10u);
  // And its rolling-window shadow (the *.window.* family).
  EXPECT_EQ(obs::Registry::global()
                .window("exec.sweep.cell_seconds")
                .snapshot()
                .count,
            10u);
}

TEST(SweepRunnerTest, WindowMergeIsIdenticalAcrossJobCounts) {
  // Cells observe deterministic (index-derived) values into a shard
  // window; the grid-order merge must make the global window's snapshot
  // independent of how cells were scheduled across workers.
  const auto run_windowed = [](std::size_t jobs) {
    obs::Registry::global().reset();
    SweepOptions options;
    options.jobs = jobs;
    SweepRunner runner(options);
    runner.run<int>(24, [](CellContext& ctx) {
      // Manual-mode window (epoch_seconds 0): no wall clock anywhere.
      ctx.registry()
          .window("test.sweep.window_ms", 0.0, 8)
          .observe(static_cast<double>(ctx.index() % 7) + 0.5);
      return 0;
    });
    return obs::Registry::global()
        .window("test.sweep.window_ms", 0.0, 8)
        .snapshot();
  };
  const auto serial = run_windowed(1);
  const auto parallel = run_windowed(4);
  EXPECT_EQ(serial.count, 24u);
  EXPECT_EQ(parallel.count, serial.count);
  EXPECT_DOUBLE_EQ(parallel.sum, serial.sum);
  EXPECT_DOUBLE_EQ(parallel.min, serial.min);
  EXPECT_DOUBLE_EQ(parallel.max, serial.max);
  EXPECT_DOUBLE_EQ(parallel.p50, serial.p50);
  EXPECT_DOUBLE_EQ(parallel.p99, serial.p99);
}

TEST(SweepRunnerTest, CellExceptionSurfacesAfterAllCellsJoin) {
  std::atomic<int> ran{0};
  SweepOptions options;
  options.jobs = 4;
  SweepRunner runner(options);
  EXPECT_THROW(
      runner.run<int>(12,
                      [&ran](CellContext& ctx) {
                        if (ctx.index() == 5) {
                          throw std::runtime_error("cell 5 failed");
                        }
                        ran.fetch_add(1);
                        return 0;
                      }),
      std::runtime_error);
  // Every other cell still executed before the rethrow.
  EXPECT_EQ(ran.load(), 11);
}

TEST(SweepRunnerTest, ZeroCellsIsANoOp) {
  SweepRunner runner;
  const std::vector<int> out =
      runner.run<int>(0, [](CellContext&) { return 1; });
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace mecsched::exec
