#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.h"

namespace mecsched::exec {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, SingleWorkerRunsEverything) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughTheFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("cell exploded"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "cell exploded");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, OneFailureDoesNotPoisonOtherTasks) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i]() -> int {
      if (i == 13) throw std::runtime_error("unlucky");
      return i;
    }));
  }
  int failures = 0;
  int sum = 0;
  for (auto& f : futures) {
    try {
      sum += f.get();
    } catch (const std::runtime_error&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(sum, 20 * 19 / 2 - 13);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWorkUnderLoad) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // Destructor must block until all 200 tasks executed.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), ModelError);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 3; });
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(f.get(), 3);
}

TEST(ThreadPoolTest, DefaultJobsHonorsOverrideThenEnv) {
  ThreadPool::set_default_jobs(5);
  EXPECT_EQ(ThreadPool::default_jobs(), 5u);
  ThreadPool::set_default_jobs(0);  // back to env / hardware

  ASSERT_EQ(setenv("MECSCHED_JOBS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_jobs(), 3u);
  ASSERT_EQ(unsetenv("MECSCHED_JOBS"), 0);
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPoolTest, ZeroWorkerRequestUsesDefault) {
  ThreadPool::set_default_jobs(2);
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 2u);
  ThreadPool::set_default_jobs(0);
}

}  // namespace
}  // namespace mecsched::exec
