// Exception-safe shutdown: a task that throws while the pool is draining —
// or a whole grid of poisoned sweep cells — must never strand the queue or
// deadlock the join; the pool keeps draining, the runner rethrows the first
// failure after all cells complete, and both stay reusable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <stdexcept>

#include "common/error.h"
#include "exec/sweep_runner.h"
#include "exec/thread_pool.h"
#include "obs/registry.h"

namespace mecsched::exec {
namespace {

TEST(PoolPoisonTest, SubmittedExceptionSurfacesInTheFutureOnly) {
  ThreadPool pool(2);
  auto poisoned = pool.submit([]() -> int { throw SolverError("boom"); });
  auto healthy = pool.submit([] { return 41 + 1; });
  EXPECT_THROW(poisoned.get(), SolverError);
  EXPECT_EQ(healthy.get(), 42);  // the worker survived the poisoned task
}

TEST(PoolPoisonTest, ThrowingTasksDuringDrainDoNotDeadlockShutdown) {
  // Queue far more throwing tasks than workers, then destroy the pool
  // immediately: shutdown() must drain every one of them and join. Before
  // the worker_loop guard, the first throw killed its worker and the join
  // hung on the stranded queue.
  std::atomic<int> drained{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&drained]() -> void {
        drained.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("poison");
      }));
    }
  }  // ~ThreadPool: graceful drain + join — completing at all is the test
  EXPECT_EQ(drained.load(), 64);
  for (auto& f : futures) EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(PoolPoisonTest, PoisonedCellCannotDeadlockTheSweepRunner) {
  SweepOptions options;
  options.jobs = 4;
  SweepRunner runner(options);
  // Every odd cell throws; run() must still finish all 16 cells, then
  // rethrow the first failure.
  std::atomic<int> ran{0};
  const std::function<int(CellContext&)> cell = [&ran](CellContext& ctx) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (ctx.index() % 2 == 1) throw SolverError("poisoned cell");
    return static_cast<int>(ctx.index());
  };
  EXPECT_THROW(runner.run<int>(16, cell), SolverError);
  EXPECT_EQ(ran.load(), 16);

  // The runner (and a fresh pool under it) stays usable afterwards.
  ran.store(0);
  const std::function<int(CellContext&)> healthy = [&ran](CellContext& ctx) {
    ran.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int>(ctx.index());
  };
  const std::vector<int> results = runner.run<int>(8, healthy);
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[i], i);
  EXPECT_EQ(ran.load(), 8);
}

TEST(PoolPoisonTest, SweepDeadlinePastDueCountsCellsButRunsThem) {
  SweepOptions options;
  options.jobs = 2;
  options.deadline = Deadline::after_s(0.0);  // already expired
  obs::Registry::global().reset();
  SweepRunner runner(options);
  const std::function<int(CellContext&)> cell = [](CellContext& ctx) {
    // Cells opt in to the budget through ctx.cancel(); the runner itself
    // never kills them.
    EXPECT_TRUE(ctx.cancel().expired());
    return static_cast<int>(ctx.index());
  };
  const std::vector<int> results = runner.run<int>(4, cell);
  EXPECT_EQ(results.size(), 4u);  // every cell still ran to completion
  EXPECT_EQ(
      obs::Registry::global().counter("exec.sweep.cells_past_deadline").value(),
      4u);
}

}  // namespace
}  // namespace mecsched::exec
