#!/usr/bin/env python3
"""mecsched source lint: project-specific invariants clang-tidy cannot see.

Rules (each with a stable id used in messages and waivers):

  rng-outside-common      std::rand/srand/std::random_device, or an RNG
                          seeded from wall-clock time, anywhere outside
                          src/common/rng*. All randomness must flow through
                          the seeded, splittable common/rng facility so
                          every run is reproducible from --seed alone.

  unordered-iteration     Range-for over a std::unordered_map/set. Bucket
                          order depends on insertion/rehash history, so
                          iterating one into CSV rows, trace events, or
                          result vectors makes output depend on memory
                          layout. Sort keys first, or use std::map, or
                          waive when order provably does not reach an
                          output (see Waivers).

  pointer-keyed-container std::map/std::set keyed on a pointer type.
                          Iteration order is address order — allocator
                          layout, i.e. nondeterminism in disguise. Key on
                          a stable id instead.

  unannotated-mutex       A raw std::mutex / condition_variable /
                          lock_guard / unique_lock outside
                          src/common/thread_annotations.h. std::mutex
                          carries no thread-safety attributes, so locks
                          taken through it are invisible to Clang's
                          -Wthread-safety analysis; the tree's locking
                          vocabulary is mecsched::Mutex / MutexLock /
                          CondVar from common/thread_annotations.h.

  detached-thread         thread.detach(). A detached thread outlives the
                          scheduler's shutdown ordering and races process
                          teardown; every thread in the tree is owned and
                          joined (see exec/thread_pool.h).

  naked-new               `new`/`delete` expressions outside smart-pointer
                          factories. Ownership is std::unique_ptr /
                          std::shared_ptr throughout the tree.

  float-in-model          `float` in model/solver code (src/mec, src/lp,
                          src/ilp, src/assign, src/dta). Mixed precision
                          perturbs LP pivots and certificate tolerances;
                          the numeric story is double-only.

  todo-tag                TODO/FIXME without an issue tag. Write
                          `TODO(#123): ...` so every deferred item is
                          trackable; untagged TODOs rot.

  dense-scan-in-kernel    Element-wise `Matrix::operator()(r, c)` reads
                          inside a loop in the hot LP kernel files
                          (src/lp/{simplex,interior_point,sparse_matrix,
                          sparse_cholesky}.cpp). Walk the CSR/CSC arrays
                          (lp/sparse_matrix.h) instead. Writes (setup/
                          assembly) are exempt. Waive on the access line,
                          or on the Matrix declaration to cover every
                          access of that identifier.

  stale-waiver            A waiver comment whose rule no longer fires on
                          the line it covers. Stale waivers hide future
                          regressions of the same rule; delete them when
                          the code they excused goes away. (Waivers for
                          the AST-checked rules are only staleness-checked
                          when the AST pass actually ran on the file — the
                          regex approximations cannot prove absence.)

Modes: the determinism rules (rng-outside-common, unordered-iteration,
pointer-keyed-container, unannotated-mutex, detached-thread) have two
implementations. With --compdb pointing at a compile_commands.json
directory and the python `clang.cindex` bindings importable, each
translation unit is parsed with libclang and the rules run on real types —
catching e.g. iteration over an unordered member declared in another file.
Without libclang (or for headers, or when a file fails to parse) the
regex approximations run instead; the fallback is per-file and silent in
the findings, counted in the summary line. The remaining rules are
regex-only everywhere.

Waivers: a comment on the offending line or on the line directly above it
silences that one finding. Two spellings are accepted:

    // lint:allow-unordered-iteration -- keys are sorted before hashing.
    // mecsched-lint: waive(unordered-iteration) -- keys sorted below.

Always append a `-- reason` so the waiver self-documents. A waiver that no
longer suppresses anything is itself reported (stale-waiver, not
waivable).

Usage:
    mecsched_lint.py [--root DIR] [--compdb DIR] [--github] [paths...]
    mecsched_lint.py --self-test       # verify every rule fires + waivers

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".cc", ".h", ".hpp"}

# Directories (relative to the scan root) whose code is "model/solver" code
# for the float-in-model rule.
MODEL_DIRS = ("src/mec", "src/lp", "src/ilp", "src/assign", "src/dta")

# Files exempt from rng-outside-common: the blessed RNG facility itself.
RNG_HOME = re.compile(r"src/common/rng[^/]*$")

# The one file allowed to touch raw std synchronization primitives: it
# wraps them in the annotated vocabulary everything else must use.
TSA_HOME = "src/common/thread_annotations.h"

# Solver hot-path files watched by dense-scan-in-kernel.
HOT_KERNEL_FILES = {
    "src/lp/simplex.cpp",
    "src/lp/basis_lu.cpp",
    "src/lp/interior_point.cpp",
    "src/lp/sparse_matrix.cpp",
    "src/lp/sparse_cholesky.cpp",
}

RULES = {
    "rng-outside-common",
    "unordered-iteration",
    "pointer-keyed-container",
    "unannotated-mutex",
    "detached-thread",
    "naked-new",
    "float-in-model",
    "todo-tag",
    "dense-scan-in-kernel",
    "stale-waiver",
}

# Rules whose authoritative implementation is the libclang pass; the regex
# versions are approximations (same-file type information only), so their
# waivers are exempt from staleness checking unless the AST pass ran.
DETERMINISM_RULES = {
    "rng-outside-common",
    "unordered-iteration",
    "pointer-keyed-container",
    "unannotated-mutex",
    "detached-thread",
}

RE_WAIVER = re.compile(
    r"lint:allow-(?P<rule>[a-z][a-z-]*)"
    r"|mecsched-lint:\s*waive\((?P<rule2>[a-z][a-z-]*)\)")


class Finding:
    def __init__(self, path: Path, rel: str, line: int, rule: str,
                 message: str):
        self.path = path
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def github(self) -> str:
        """One GitHub Actions workflow-command annotation."""
        return (f"::error file={self.rel},line={self.line},"
                f"title=mecsched-lint [{self.rule}]::{self.message}")


def strip_comments_and_strings(text: str) -> list[str]:
    """Return per-line source with comments and string/char literals blanked.

    Length and line structure are preserved so column-free line numbers stay
    valid. Comment text is also returned blanked, so rules never match words
    inside comments — waivers are handled separately on the raw lines.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    buf = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1 : i + 18]) if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    buf.append('"')
                    i += 1
                    continue
                state = "string"
                buf.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append("'")
                i += 1
                continue
            buf.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                buf.append("\n")
            else:
                buf.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                buf.append("  ")
                i += 2
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                buf.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                buf.append('"')
                i += 1
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                buf.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                buf.append("'")
                i += 1
            else:
                buf.append(" ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                buf.append(raw_delim)
                i += len(raw_delim)
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(buf).split("\n")


RE_LOOP_KW = re.compile(r"\b(for|while)\s*\(")


def loop_line_mask(code_lines: list[str]) -> list[bool]:
    """Marks lines that are inside (or start) a for/while loop.

    Brace-depth heuristic over comment-stripped code: a `{` that follows a
    loop header opens a loop scope; a header followed by `;` (no braces) is
    a single-statement loop confined to that statement. Preprocessor tricks
    can fool this — the rule using it accepts per-line waivers for a reason.
    """
    mask = [False] * len(code_lines)
    scopes: list[str] = []  # "loop" | "other" per open brace
    pending = False  # saw a loop keyword, waiting for its { or ;
    header_parens = 0
    header_done = False
    for idx, line in enumerate(code_lines):
        if pending or "loop" in scopes:
            mask[idx] = True
        events = [(m.start(), "kw") for m in RE_LOOP_KW.finditer(line)]
        events += [(i, c) for i, c in enumerate(line) if c in "(){};"]
        for _, ev in sorted(events):
            if ev == "kw":
                pending, header_parens, header_done = True, 0, False
                mask[idx] = True
            elif ev == "(" and pending and not header_done:
                header_parens += 1
            elif ev == ")" and pending and not header_done:
                header_parens -= 1
                header_done = header_parens == 0
            elif ev == "{":
                scopes.append("loop" if pending and header_done else "other")
                pending = False
            elif ev == "}":
                if scopes:
                    scopes.pop()
            elif ev == ";" and pending and header_done:
                pending = False  # single-statement loop body ended
    return mask


class SourceFile:
    """One source file with every shared per-file pass computed at most
    once: comment stripping, the loop mask, and the waiver scan. Rules all
    read from here instead of re-deriving their own views."""

    def __init__(self, path: Path, rel: str, text: str | None = None):
        self.path = path
        self.rel = rel
        self.raw = (path.read_text(encoding="utf-8", errors="replace")
                    if text is None else text)
        self.raw_lines = self.raw.split("\n")
        self._code_lines: list[str] | None = None
        self._code_joined: str | None = None
        self._loop_mask: list[bool] | None = None
        self._waivers: list[tuple[int, str]] | None = None

    @property
    def code_lines(self) -> list[str]:
        if self._code_lines is None:
            self._code_lines = strip_comments_and_strings(self.raw)
        return self._code_lines

    @property
    def code_joined(self) -> str:
        if self._code_joined is None:
            self._code_joined = "\n".join(self.code_lines)
        return self._code_joined

    @property
    def loop_mask(self) -> list[bool]:
        if self._loop_mask is None:
            self._loop_mask = loop_line_mask(self.code_lines)
        return self._loop_mask

    @property
    def waivers(self) -> list[tuple[int, str]]:
        """(0-based line index, rule) for every waiver comment."""
        if self._waivers is None:
            self._waivers = []
            for idx, line in enumerate(self.raw_lines):
                for m in RE_WAIVER.finditer(line):
                    self._waivers.append(
                        (idx, m.group("rule") or m.group("rule2")))
        return self._waivers


class FileLint:
    """Finding collection + waiver bookkeeping for one file.

    report() drops a finding when a waiver covers it (same line or the
    line above) and records which waiver fired, so the stale-waiver pass
    can flag the ones that never did."""

    def __init__(self, sf: SourceFile):
        self.sf = sf
        self.findings: list[Finding] = []
        self._waiver_sites = {(idx, rule) for idx, rule in sf.waivers}
        self.used_waivers: set[tuple[int, str]] = set()

    def _waiver_for(self, lineno: int, rule: str) -> int | None:
        for idx in (lineno - 1, lineno - 2):  # trailing, or line above
            if (idx, rule) in self._waiver_sites:
                return idx
        return None

    def report(self, lineno: int, rule: str, message: str,
               alt_sites: tuple[int, ...] = ()) -> None:
        for site in (lineno, *alt_sites):
            idx = self._waiver_for(site, rule)
            if idx is not None:
                self.used_waivers.add((idx, rule))
                return
        self.findings.append(
            Finding(self.sf.path, self.sf.rel, lineno, rule, message))


RE_RAND = re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b")
RE_TIME_SEED = re.compile(
    r"\b(mt19937(_64)?|default_random_engine|minstd_rand0?|SplitMix64|Rng)\b"
    r"(\s+\w+)?\s*[({].*\b(time\s*\(|clock\s*\(|system_clock|steady_clock|"
    r"high_resolution_clock)"
)
RE_NEW = re.compile(r"(?<!\w)new\s+(?!\()[A-Za-z_:<]")
RE_PLACEMENT_NEW = re.compile(r"(?<!\w)new\s*\(")
RE_DELETE = re.compile(r"(?<!\w)delete(\s*\[\s*\])?\s+[A-Za-z_*]")
RE_FLOAT = re.compile(r"(?<![\w.])float(?![\w.])")
RE_TODO = re.compile(r"\b(TODO|FIXME)\b")
RE_TODO_TAGGED = re.compile(r"\b(TODO|FIXME)\s*\(#\d+\)")
RE_UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(map|set|multimap|multiset)\s*<[^;]*>\s*\n?\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*[;={]"
)
RE_RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*(?P<expr>[^)]+)\)")
RE_DENSE_DECL = re.compile(
    r"\b(?:const\s+)?Matrix\s*&?\s+(?P<name>[A-Za-z_]\w*)\s*(?:[;=({,)]|$)"
)
RE_PTR_KEYED = re.compile(
    r"\bstd::(map|set|multimap|multiset)\s*<[^,<>]*\*\s*[,>]")
RE_RAW_SYNC = re.compile(
    r"\bstd::(recursive_timed_mutex|recursive_mutex|shared_timed_mutex|"
    r"shared_mutex|timed_mutex|mutex|condition_variable_any|"
    r"condition_variable|lock_guard|unique_lock|scoped_lock)\b")
RE_DETACH = re.compile(r"\.\s*detach\s*\(\s*\)")

MSG_RNG_RAND = ("std::rand/srand/random_device: use common/rng so runs "
                "are reproducible from --seed")
MSG_RNG_TIME = ("time-seeded RNG: seed from the scenario/config seed, "
                "never from the clock")
MSG_PTR_KEYED = ("ordered container keyed on a pointer: iteration order is "
                 "address order (allocator-dependent); key on a stable id")
MSG_RAW_SYNC = ("raw std synchronization primitive: use mecsched::Mutex/"
                "MutexLock/CondVar (common/thread_annotations.h) so Clang's "
                "thread-safety analysis sees the lock")
MSG_DETACH = ("detached thread: detached threads race process teardown; "
              "own and join every thread (see exec/thread_pool.h)")


def unordered_iteration_msg(base: str) -> str:
    return (f"iteration over unordered container '{base}': bucket order is "
            "layout-dependent; sort keys first or use std::map")


def regex_determinism_rules(fl: FileLint) -> None:
    """Regex approximations of the AST-checked rules (fallback mode)."""
    sf = fl.sf
    rng_home = RNG_HOME.search(sf.rel) is not None
    tsa_home = sf.rel == TSA_HOME

    unordered_names = set()
    for m in RE_UNORDERED_DECL.finditer(sf.code_joined):
        unordered_names.add(m.group("name"))

    for idx, line in enumerate(sf.code_lines, start=1):
        if not rng_home:
            if RE_RAND.search(line):
                fl.report(idx, "rng-outside-common", MSG_RNG_RAND)
            if RE_TIME_SEED.search(line):
                fl.report(idx, "rng-outside-common", MSG_RNG_TIME)
        if RE_PTR_KEYED.search(line):
            fl.report(idx, "pointer-keyed-container", MSG_PTR_KEYED)
        if not tsa_home and RE_RAW_SYNC.search(line):
            fl.report(idx, "unannotated-mutex", MSG_RAW_SYNC)
        if RE_DETACH.search(line):
            fl.report(idx, "detached-thread", MSG_DETACH)
        for fm in RE_RANGE_FOR.finditer(line):
            expr = fm.group("expr").strip()
            base = re.split(r"[.\->\[(]", expr, maxsplit=1)[0].strip().lstrip("*&")
            if base in unordered_names:
                fl.report(idx, "unordered-iteration",
                          unordered_iteration_msg(base))


def regex_core_rules(fl: FileLint) -> None:
    """The rules that are regex-implemented in every mode."""
    sf = fl.sf
    in_model = any(sf.rel.startswith(d + "/") or sf.rel == d
                   for d in MODEL_DIRS)

    for idx, line in enumerate(sf.code_lines, start=1):
        if RE_NEW.search(line) and not RE_PLACEMENT_NEW.search(line):
            fl.report(idx, "naked-new",
                      "naked new: use std::make_unique/make_shared or a "
                      "container")
        if RE_DELETE.search(line):
            fl.report(idx, "naked-new",
                      "naked delete: ownership belongs to smart pointers")
        if in_model and RE_FLOAT.search(line):
            fl.report(idx, "float-in-model",
                      "float in model/solver code: the numeric story is "
                      "double-only (LP pivots and certificates assume it)")

    # Dense element-wise scans on the solver hot path (hot files only).
    if sf.rel in HOT_KERNEL_FILES:
        dense_decl: dict[str, int] = {}
        for idx, line in enumerate(sf.code_lines, start=1):
            for dm in RE_DENSE_DECL.finditer(line):
                dense_decl.setdefault(dm.group("name"), idx)
        if dense_decl:
            access = re.compile(
                r"\b(?P<name>" + "|".join(map(re.escape, sorted(dense_decl)))
                + r")\s*\(")
            mask = sf.loop_mask
            for idx, line in enumerate(sf.code_lines, start=1):
                if not mask[idx - 1]:
                    continue
                for am in access.finditer(line):
                    name = am.group("name")
                    decl = dense_decl[name]
                    if decl == idx:
                        continue  # the declaration's own constructor call
                    if re.match(r"[^()]*\)\s*=(?!=)", line[am.end():]):
                        continue  # plain write: assembly/setup, not a scan
                    # A waiver on the declaration covers every access.
                    fl.report(idx, "dense-scan-in-kernel",
                              f"element-wise read of dense Matrix '{name}' "
                              "in a loop on the solver hot path: walk the "
                              "CSR/CSC arrays (lp/sparse_matrix.h) or add a "
                              "deliberate waiver",
                              alt_sites=(decl,))

    # TODO tagging is checked on raw lines: TODOs live in comments. Waiver
    # lines are skipped wholesale — their reason text is not a TODO.
    for idx, line in enumerate(sf.raw_lines, start=1):
        if RE_TODO.search(line) and not RE_TODO_TAGGED.search(line):
            if not RE_WAIVER.search(line):
                fl.report(idx, "todo-tag",
                          "untagged TODO/FIXME: write TODO(#<issue>): so it "
                          "is trackable")


def stale_waiver_pass(fl: FileLint, ast_ran: bool) -> None:
    """Flags waivers that did not suppress anything this run.

    Waivers for determinism rules are only judged when the AST pass ran on
    the file: the regex approximations can miss findings the AST sees
    (e.g. iteration over a member declared in another file), and a waiver
    the active mode cannot match is not provably stale.
    """
    for idx, rule in fl.sf.waivers:
        if rule not in RULES or rule == "stale-waiver":
            fl.findings.append(Finding(
                fl.sf.path, fl.sf.rel, idx + 1, "stale-waiver",
                f"waiver names unknown rule '{rule}'"))
            continue
        if (idx, rule) in fl.used_waivers:
            continue
        if rule in DETERMINISM_RULES and not ast_ran:
            continue
        fl.findings.append(Finding(
            fl.sf.path, fl.sf.rel, idx + 1, "stale-waiver",
            f"waiver for '{rule}' no longer suppresses anything; delete it"))


def lint_file(sf: SourceFile,
              ast_findings: list[tuple[int, str, str]] | None = None
              ) -> list[Finding]:
    """Lints one file. `ast_findings` (line, rule, message) replaces the
    regex determinism rules when the AST pass parsed the file."""
    fl = FileLint(sf)
    if ast_findings is not None:
        for lineno, rule, message in ast_findings:
            fl.report(lineno, rule, message)
    else:
        regex_determinism_rules(fl)
    regex_core_rules(fl)
    stale_waiver_pass(fl, ast_ran=ast_findings is not None)
    fl.findings.sort(key=lambda f: (f.line, f.rule))
    return fl.findings


# --- libclang (AST) pass ---------------------------------------------------

RE_AST_UNORDERED = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")
RE_AST_PTR_KEYED = re.compile(
    r"\bstd::(map|set|multimap|multiset)<[^,<>]*\*\s*[,>]")
RE_AST_RAW_SYNC = RE_RAW_SYNC
RE_AST_RNG_TYPE = re.compile(
    r"\b(mt19937(_64)?|default_random_engine|minstd_rand0?|ranlux\w+|"
    r"knuth_b|SplitMix64)\b")
CLOCK_SPELLINGS = {"now", "time", "clock"}


class AstPass:
    """Determinism rules on real types, via clang.cindex.

    Construction raises when the bindings or the native libclang are
    unavailable — callers fall back to the regex approximations. Per-file
    parse failures (no compile command, hard errors) degrade the same way:
    findings_for() returns None and the caller reruns the regex rules.
    """

    def __init__(self, compdb_dir: Path | None):
        from clang import cindex  # ImportError -> no AST mode

        self.cindex = cindex
        self.index = cindex.Index.create()  # LibclangError -> no AST mode
        self.db = None
        if compdb_dir is not None:
            self.db = cindex.CompilationDatabase.fromDirectory(
                str(compdb_dir))
        self.parsed = 0
        self.failed = 0

    def _args_for(self, path: Path) -> list[str] | None:
        cmds = self.db.getCompileCommands(str(path)) if self.db else None
        if not cmds:
            return None
        raw = list(cmds[0].arguments)
        args: list[str] = []
        skip = False
        for a in raw[1:]:  # drop the compiler itself
            if skip:
                skip = False
                continue
            if a == "-c":
                continue
            if a == "-o":
                skip = True
                continue
            if a == str(path) or a == path.name:
                continue  # the source operand; parse() names it explicitly
            args.append(a)
        return args

    def findings_for(self, sf: SourceFile,
                     args: list[str] | None = None
                     ) -> list[tuple[int, str, str]] | None:
        try:
            if args is None:
                args = self._args_for(sf.path)
                if args is None:
                    return None
            tu = self.index.parse(str(sf.path), args=args)
            if any(d.severity >= self.cindex.Diagnostic.Error
                   for d in tu.diagnostics):
                return None  # types unreliable; regex fallback
            found = self._collect(tu, sf)
            self.parsed += 1
            return found
        except Exception:
            self.failed += 1
            return None

    def _collect(self, tu, sf: SourceFile) -> list[tuple[int, str, str]]:
        ck = self.cindex.CursorKind
        main_file = str(sf.path)
        rng_home = RNG_HOME.search(sf.rel) is not None
        tsa_home = sf.rel == TSA_HOME
        out: set[tuple[int, str, str]] = set()
        file_match_cache: dict[str, bool] = {}

        def in_main_file(node) -> bool:
            f = node.location.file
            if f is None:
                return False
            name = f.name
            hit = file_match_cache.get(name)
            if hit is None:
                try:
                    hit = (name == main_file or
                           Path(name).resolve() == sf.path.resolve())
                except OSError:
                    hit = False
                file_match_cache[name] = hit
            return hit

        def canonical(t) -> str:
            try:
                return t.get_canonical().spelling
            except Exception:
                return t.spelling

        def any_clock_call(node) -> bool:
            for d in node.walk_preorder():
                if d.kind in (ck.CALL_EXPR, ck.DECL_REF_EXPR) and \
                        d.spelling in CLOCK_SPELLINGS:
                    return True
            return False

        def subtree_has_unordered(node) -> bool:
            for d in node.walk_preorder():
                try:
                    if RE_AST_UNORDERED.search(canonical(d.type)):
                        return True
                except Exception:
                    continue
            return False

        def visit(node):
            if in_main_file(node):
                line = node.location.line
                kind = node.kind
                if kind in (ck.FIELD_DECL, ck.VAR_DECL):
                    ct = canonical(node.type)
                    if not tsa_home and RE_AST_RAW_SYNC.search(ct):
                        out.add((line, "unannotated-mutex", MSG_RAW_SYNC))
                    if RE_AST_PTR_KEYED.search(ct):
                        out.add((line, "pointer-keyed-container",
                                 MSG_PTR_KEYED))
                    if not rng_home and "random_device" in ct:
                        out.add((line, "rng-outside-common", MSG_RNG_RAND))
                    if not rng_home and \
                            RE_AST_RNG_TYPE.search(node.type.spelling) and \
                            any_clock_call(node):
                        out.add((line, "rng-outside-common", MSG_RNG_TIME))
                elif kind == ck.CXX_FOR_RANGE_STMT:
                    children = list(node.get_children())
                    # The body is syntactically last; the range expression
                    # (and the loop variable) come before it.
                    for ch in children[:-1]:
                        if subtree_has_unordered(ch):
                            out.add((line, "unordered-iteration",
                                     unordered_iteration_msg(
                                         ch.spelling or "<expr>")))
                            break
                elif kind == ck.DECL_REF_EXPR and \
                        node.spelling in ("rand", "srand") and not rng_home:
                    ref = node.referenced
                    if ref is not None and ref.kind == ck.FUNCTION_DECL:
                        out.add((line, "rng-outside-common", MSG_RNG_RAND))
                elif kind == ck.CALL_EXPR and node.spelling == "detach":
                    try:
                        parent = node.referenced.semantic_parent.spelling
                    except Exception:
                        parent = ""
                    if parent in ("thread", "jthread"):
                        out.add((line, "detached-thread", MSG_DETACH))
            for ch in node.get_children():
                visit(ch)

        visit(tu.cursor)
        return sorted(out)


def make_ast_pass(compdb: Path | None, quiet: bool = False):
    """AstPass or None; never raises. compdb may be the directory holding
    compile_commands.json or the file itself."""
    compdb_dir = None
    if compdb is not None:
        compdb_dir = compdb.parent if compdb.is_file() else compdb
        if not (compdb_dir / "compile_commands.json").is_file():
            if not quiet:
                print(f"mecsched_lint: no compile_commands.json under "
                      f"{compdb_dir}; using regex rules",
                      file=sys.stderr)
            return None
    try:
        return AstPass(compdb_dir)
    except Exception as e:
        if not quiet:
            print(f"mecsched_lint: libclang unavailable ({e.__class__.__name__}); "
                  "using regex rules", file=sys.stderr)
        return None


def iter_sources(root: Path, paths: list[str]) -> list[tuple[Path, str]]:
    targets = paths if paths else ["src", "bench"]
    files: list[tuple[Path, str]] = []
    for t in targets:
        p = (root / t) if not Path(t).is_absolute() else Path(t)
        if p.is_file():
            files.append((p, str(p.relative_to(root)) if p.is_relative_to(root) else str(p)))
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in CXX_SUFFIXES and f.is_file():
                    files.append((f, str(f.relative_to(root))))
        else:
            print(f"mecsched_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


# --- self test -------------------------------------------------------------

SELF_TEST_CASES = [
    # (rule expected to fire, relative path to pretend, snippet)
    ("rng-outside-common", "src/assign/x.cpp",
     "int r = std::rand();\n"),
    ("rng-outside-common", "src/exec/x.cpp",
     "std::mt19937 gen(std::chrono::steady_clock::now().time_since_epoch()"
     ".count());\n"),
    ("unordered-iteration", "src/cli/x.cpp",
     "std::unordered_map<int, double> table;\n"
     "for (const auto& kv : table) csv << kv.first;\n"),
    ("pointer-keyed-container", "src/mec/x.cpp",
     "std::map<const Station*, double> load;\n"),
    ("pointer-keyed-container", "src/serve/x.cpp",
     "std::set<Event*> pending;\n"),
    ("unannotated-mutex", "src/serve/x.cpp",
     "mutable std::mutex mu_;\n"),
    ("unannotated-mutex", "src/exec/x.cpp",
     "const std::lock_guard<std::mutex> lock(mu_);\n"),
    ("detached-thread", "src/exec/x.cpp",
     "worker.detach();\n"),
    ("naked-new", "src/obs/x.cpp",
     "auto* p = new Widget();\n"),
    ("naked-new", "src/obs/x.cpp",
     "delete ptr;\n"),
    ("float-in-model", "src/lp/x.cpp",
     "float tolerance = 0.1f;\n"),
    ("todo-tag", "src/mec/x.cpp",
     "// TODO: make this faster\n"),
    ("dense-scan-in-kernel", "src/lp/simplex.cpp",
     "Matrix a_;\n"
     "void f() {\n"
     "  for (std::size_t r = 0; r < m; ++r) dj -= y[r] * a_(r, j);\n"
     "}\n"),
    ("dense-scan-in-kernel", "src/lp/interior_point.cpp",
     "Matrix mmat(m, m);\n"
     "while (running) {\n"
     "  acc += mmat(i, j) * d[j];\n"
     "}\n"),
    # A waiver whose rule never fires is itself a finding.
    ("stale-waiver", "src/obs/x.cpp",
     "// lint:allow-naked-new -- the new went away in a refactor.\n"
     "auto p = std::make_unique<Widget>();\n"),
    ("stale-waiver", "src/obs/x.cpp",
     "// lint:allow-no-such-rule -- typo in the rule name.\n"),
    ("stale-waiver", "src/lp/x.cpp",
     "// mecsched-lint: waive(float-in-model) -- no float left here.\n"
     "double x = 0.0;\n"),
]

SELF_TEST_CLEAN = [
    ("src/assign/x.cpp", "double r = rng.uniform();\n"),
    ("src/common/rng.cpp", "std::random_device seed_source;\n"),
    ("src/cli/x.cpp",
     "std::unordered_map<int, double> table;\n"
     "// lint:allow-unordered-iteration -- keys sorted below.\n"
     "for (const auto& kv : table) keys.push_back(kv.first);\n"),
    # The waive(...) spelling works too.
    ("src/obs/x.cpp",
     "// mecsched-lint: waive(naked-new) -- intentionally leaked singleton.\n"
     "static Registry* g = new Registry();\n"),
    ("src/obs/x.cpp", "auto p = std::make_unique<Widget>();\n"),
    ("src/cli/x.cpp", "float ui_scale = 1.0f;\n"),  # float fine outside model
    ("src/mec/x.cpp", "// TODO(#42): make this faster\n"),
    ("src/lp/x.cpp", "// a comment mentioning float and new is fine\n"),
    ("src/lp/x.cpp", 'log("string with float and new words");\n'),
    # The annotated vocabulary is what the rule wants to see.
    ("src/exec/x.cpp",
     "mutable Mutex mu_;\n"
     "const MutexLock lock(mu_);\n"),
    # The vocabulary header itself is the one sanctioned std::mutex home.
    ("src/common/thread_annotations.h",
     "std::mutex mu_;\n"
     "std::condition_variable cv_;\n"),
    # Pointer VALUES are fine; only pointer KEYS are address-ordered.
    ("src/mec/x.cpp", "std::map<std::uint64_t, Station*> by_id;\n"),
    # A determinism-rule waiver is not judged stale in regex mode: the
    # container may be declared in another file, where only the AST pass
    # can see it (e.g. exec/instance_cache.cpp's members).
    ("src/exec/x.cpp",
     "// lint:allow-unordered-iteration -- keys sorted; member declared in "
     "the header.\n"
     "for (const auto& kv : index_) keys.push_back(kv.first);\n"),
    # dense-scan-in-kernel: per-line waiver on an intentional dense fallback.
    ("src/lp/simplex.cpp",
     "Matrix a_;\n"
     "void f() {\n"
     "  for (std::size_t r = 0; r < m; ++r) {\n"
     "    // lint:allow-dense-scan-in-kernel -- dense fallback path.\n"
     "    dj -= y[r] * a_(r, j);\n"
     "  }\n"
     "}\n"),
    # dense-scan-in-kernel: declaration-site waiver covers all accesses.
    ("src/lp/simplex.cpp",
     "// lint:allow-dense-scan-in-kernel -- Gauss-Jordan work matrix.\n"
     "Matrix bmat(m, m);\n"
     "for (std::size_t c = 0; c < m; ++c) piv += bmat(r, c);\n"),
    # dense-scan-in-kernel: writes are assembly, not scans.
    ("src/lp/simplex.cpp",
     "Matrix a_;\n"
     "for (std::size_t r = 0; r < m; ++r) a_(r, slack) = 1.0;\n"),
    # dense-scan-in-kernel: reads outside loops are spot reads.
    ("src/lp/simplex.cpp",
     "Matrix a_;\n"
     "double v = a_(0, 1);\n"),
    # dense-scan-in-kernel: only the hot kernel files are watched.
    ("src/lp/cholesky.cpp",
     "Matrix m_;\n"
     "for (std::size_t r = 0; r < n; ++r) x += m_(r, r);\n"),
]

# (rule-or-None, snippet) — parsed standalone by the AST pass when libclang
# is importable. None means the snippet must come back clean.
AST_SELF_TEST_CASES = [
    ("unordered-iteration",
     "#include <unordered_map>\n"
     "struct S {\n"
     "  std::unordered_map<int, int> m;\n"
     "  int sum() { int s = 0; for (auto& kv : m) s += kv.second; "
     "return s; }\n"
     "};\n"),
    ("pointer-keyed-container",
     "#include <map>\n"
     "struct Node {};\n"
     "std::map<Node*, int> g_order;\n"),
    ("unannotated-mutex",
     "#include <mutex>\n"
     "struct S { std::mutex mu; };\n"),
    ("detached-thread",
     "#include <thread>\n"
     "void f() { std::thread t([] {}); t.detach(); }\n"),
    ("rng-outside-common",
     "#include <cstdlib>\n"
     "int f() { return std::rand(); }\n"),
    ("rng-outside-common",
     "#include <chrono>\n"
     "#include <random>\n"
     "void f() {\n"
     "  std::mt19937 gen(static_cast<unsigned>(\n"
     "      std::chrono::steady_clock::now().time_since_epoch().count()));\n"
     "  (void)gen;\n"
     "}\n"),
    (None,  # sorted map: iteration order is well-defined
     "#include <map>\n"
     "int f() {\n"
     "  std::map<int, int> m;\n"
     "  int s = 0;\n"
     "  for (auto& kv : m) s += kv.second;\n"
     "  return s;\n"
     "}\n"),
    (None,  # seeded RNG: no clock in sight
     "#include <random>\n"
     "int f(unsigned seed) { std::mt19937 g(seed); return (int)g(); }\n"),
]


def self_test() -> int:
    import tempfile

    t0 = time.monotonic()
    failures = 0
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)

        def run(rel: str, snippet: str) -> list[Finding]:
            f = root / rel
            f.parent.mkdir(parents=True, exist_ok=True)
            f.write_text(snippet)
            return lint_file(SourceFile(f, rel))

        for rule, rel, snippet in SELF_TEST_CASES:
            found = run(rel, snippet)
            if not any(x.rule == rule for x in found):
                print(f"SELF-TEST FAIL: expected [{rule}] to fire on:\n"
                      f"{snippet}", file=sys.stderr)
                failures += 1
        for rel, snippet in SELF_TEST_CLEAN:
            found = run(rel, snippet)
            if found:
                print(f"SELF-TEST FAIL: expected clean, got "
                      f"{[str(x) for x in found]} on:\n{snippet}",
                      file=sys.stderr)
                failures += 1

        # GitHub annotation format.
        gh = Finding(root / "src/lp/x.cpp", "src/lp/x.cpp", 7, "naked-new",
                     "naked new: nope").github()
        want = ("::error file=src/lp/x.cpp,line=7,"
                "title=mecsched-lint [naked-new]::naked new: nope")
        if gh != want:
            print(f"SELF-TEST FAIL: github format\n  got  {gh}\n"
                  f"  want {want}", file=sys.stderr)
            failures += 1

        # AST pass, when the bindings are importable. Each fixture is
        # parsed standalone (no compilation database needed).
        ast = make_ast_pass(None, quiet=True)
        ast_mode = "unavailable (regex fallback exercised above)"
        if ast is not None:
            ast_mode = "exercised"
            ast_dir = root / "ast"
            ast_dir.mkdir()
            for i, (rule, snippet) in enumerate(AST_SELF_TEST_CASES):
                rel = f"src/ast/fixture_{i}.cpp"
                f = ast_dir / f"fixture_{i}.cpp"
                f.write_text(snippet)
                sf = SourceFile(f, rel)
                got = ast.findings_for(sf, args=["-x", "c++", "-std=c++20"])
                if got is None:
                    print(f"SELF-TEST FAIL: AST parse failed on:\n{snippet}",
                          file=sys.stderr)
                    failures += 1
                    continue
                rules_hit = {r for _, r, _ in got}
                if rule is None and rules_hit:
                    print(f"SELF-TEST FAIL: AST expected clean, got "
                          f"{sorted(rules_hit)} on:\n{snippet}",
                          file=sys.stderr)
                    failures += 1
                elif rule is not None and rule not in rules_hit:
                    print(f"SELF-TEST FAIL: AST expected [{rule}], got "
                          f"{sorted(rules_hit)} on:\n{snippet}",
                          file=sys.stderr)
                    failures += 1

            # In AST mode an unmatched determinism-rule waiver IS stale.
            stale = ast_dir / "stale.cpp"
            rel = "src/ast/stale.cpp"
            stale.write_text(
                "// lint:allow-unordered-iteration -- nothing here.\n"
                "int x = 0;\n")
            sf = SourceFile(stale, rel)
            got = ast.findings_for(sf, args=["-x", "c++", "-std=c++20"])
            found = lint_file(sf, ast_findings=got)
            if not any(x.rule == "stale-waiver" for x in found):
                print("SELF-TEST FAIL: expected stale-waiver for an "
                      "unmatched determinism waiver in AST mode",
                      file=sys.stderr)
                failures += 1

    elapsed = time.monotonic() - t0
    if failures:
        print(f"mecsched_lint self-test: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print(f"mecsched_lint self-test: all rules fire and all waivers hold "
          f"(AST pass {ast_mode}; {elapsed:.2f}s)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--compdb", default=None, metavar="DIR",
                    help="directory holding compile_commands.json; enables "
                         "the libclang pass for files it covers")
    ap.add_argument("--github", action="store_true",
                    help="emit GitHub Actions ::error annotations instead "
                         "of the plain format")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded rule fixtures and exit")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src/ bench/)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    t0 = time.monotonic()
    root = Path(args.root).resolve()
    ast = None
    if args.compdb is not None:
        compdb = Path(args.compdb)
        if not compdb.is_absolute():
            compdb = root / compdb
        ast = make_ast_pass(compdb)

    findings: list[Finding] = []
    files = iter_sources(root, args.paths)
    ast_files = 0
    for path, rel in files:
        sf = SourceFile(path, rel)
        ast_findings = ast.findings_for(sf) if ast is not None else None
        if ast_findings is not None:
            ast_files += 1
        findings.extend(lint_file(sf, ast_findings))

    for f in findings:
        print(f.github() if args.github else f)
    elapsed = time.monotonic() - t0
    mode = (f"{ast_files} AST / {len(files) - ast_files} regex"
            if ast is not None else "regex")
    if findings:
        print(f"mecsched_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s) ({mode}; {elapsed:.2f}s)",
              file=sys.stderr)
        return 1
    print(f"mecsched_lint: clean ({len(files)} files; {mode}; "
          f"{elapsed:.2f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
