#!/usr/bin/env python3
"""mecsched source lint: project-specific invariants clang-tidy cannot see.

Rules (each with a stable id used in messages and suppressions):

  rng-outside-common      std::rand/srand/std::random_device, or an RNG
                          seeded from wall-clock time, anywhere outside
                          src/common/rng*. All randomness must flow through
                          the seeded, splittable common/rng facility so
                          every run is reproducible from --seed alone.

  unordered-iteration     Range-for over a std::unordered_map/set declared
                          in the same file. Bucket order depends on
                          insertion/rehash history, so iterating one into
                          CSV rows, trace events, or result vectors makes
                          output depend on memory layout. Sort keys first,
                          or use std::map, or suppress when order provably
                          does not reach an output (see Suppressions).

  naked-new               `new`/`delete` expressions outside smart-pointer
                          factories. Ownership is std::unique_ptr /
                          std::shared_ptr throughout the tree.

  float-in-model          `float` in model/solver code (src/mec, src/lp,
                          src/ilp, src/assign, src/dta). Mixed precision
                          perturbs LP pivots and certificate tolerances;
                          the numeric story is double-only.

  todo-tag                TODO/FIXME without an issue tag. Write
                          `TODO(#123): ...` so every deferred item is
                          trackable; untagged TODOs rot.

  dense-scan-in-kernel    Element-wise `Matrix::operator()(r, c)` reads
                          inside a loop in the hot LP kernel files
                          (src/lp/{simplex,interior_point,sparse_matrix,
                          sparse_cholesky}.cpp). Those loops are the
                          per-iteration solver hot path; walk the CSR/CSC
                          arrays (lp/sparse_matrix.h) or the dense row
                          pointers instead. Writes (setup/assembly) are
                          exempt. Waive on the access line for an
                          intentional dense fallback, or on the Matrix
                          declaration to cover every access of that
                          identifier (e.g. a Gauss-Jordan work matrix).

Suppressions: a comment `lint:allow-<rule-id>` on the offending line or on
the line directly above it silences that one finding. Always append a
`-- reason` so the waiver self-documents:

    // lint:allow-unordered-iteration -- keys are sorted before hashing.

Usage:
    mecsched_lint.py [--root DIR] [paths...]   # default: src/ bench/ under root
    mecsched_lint.py --self-test               # verify each rule fires

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".cc", ".h", ".hpp"}

# Directories (relative to the scan root) whose code is "model/solver" code
# for the float-in-model rule.
MODEL_DIRS = ("src/mec", "src/lp", "src/ilp", "src/assign", "src/dta")

# Files exempt from rng-outside-common: the blessed RNG facility itself.
RNG_HOME = re.compile(r"src/common/rng[^/]*$")

# Solver hot-path files watched by dense-scan-in-kernel.
HOT_KERNEL_FILES = {
    "src/lp/simplex.cpp",
    "src/lp/interior_point.cpp",
    "src/lp/sparse_matrix.cpp",
    "src/lp/sparse_cholesky.cpp",
}

SUPPRESS = "lint:allow-"


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> list[str]:
    """Return per-line source with comments and string/char literals blanked.

    Length and line structure are preserved so column-free line numbers stay
    valid. Comment text is also returned blanked, so rules never match words
    inside comments — suppressions are handled separately on the raw lines.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    buf = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1 : i + 18]) if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    buf.append('"')
                    i += 1
                    continue
                state = "string"
                buf.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append("'")
                i += 1
                continue
            buf.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                buf.append("\n")
            else:
                buf.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                buf.append("  ")
                i += 2
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                buf.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                buf.append('"')
                i += 1
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                buf.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                buf.append("'")
                i += 1
            else:
                buf.append(" ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                buf.append(raw_delim)
                i += len(raw_delim)
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(buf).split("\n")


def suppressed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    """True when line `lineno` (1-based) or the line above carries an allow."""
    token = SUPPRESS + rule
    for candidate in (lineno - 1, lineno - 2):
        if 0 <= candidate < len(raw_lines) and token in raw_lines[candidate]:
            return True
    return False


RE_RAND = re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b")
RE_TIME_SEED = re.compile(
    r"\b(mt19937(_64)?|default_random_engine|minstd_rand0?|SplitMix64|Rng)\b"
    r"(\s+\w+)?\s*[({].*\b(time\s*\(|clock\s*\(|system_clock|steady_clock|"
    r"high_resolution_clock)"
)
RE_NEW = re.compile(r"(?<!\w)new\s+(?!\()[A-Za-z_:<]")
RE_PLACEMENT_NEW = re.compile(r"(?<!\w)new\s*\(")
RE_DELETE = re.compile(r"(?<!\w)delete(\s*\[\s*\])?\s+[A-Za-z_*]")
RE_FLOAT = re.compile(r"(?<![\w.])float(?![\w.])")
RE_TODO = re.compile(r"\b(TODO|FIXME)\b")
RE_TODO_TAGGED = re.compile(r"\b(TODO|FIXME)\s*\(#\d+\)")
RE_UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(map|set|multimap|multiset)\s*<[^;]*>\s*\n?\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*[;={]"
)
RE_RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*(?P<expr>[^)]+)\)")
RE_DENSE_DECL = re.compile(
    r"\b(?:const\s+)?Matrix\s*&?\s+(?P<name>[A-Za-z_]\w*)\s*(?:[;=({,)]|$)"
)
RE_LOOP_KW = re.compile(r"\b(for|while)\s*\(")


def loop_line_mask(code_lines: list[str]) -> list[bool]:
    """Marks lines that are inside (or start) a for/while loop.

    Brace-depth heuristic over comment-stripped code: a `{` that follows a
    loop header opens a loop scope; a header followed by `;` (no braces) is
    a single-statement loop confined to that statement. Preprocessor tricks
    can fool this — the rule using it accepts per-line waivers for a reason.
    """
    mask = [False] * len(code_lines)
    scopes: list[str] = []  # "loop" | "other" per open brace
    pending = False  # saw a loop keyword, waiting for its { or ;
    header_parens = 0
    header_done = False
    for idx, line in enumerate(code_lines):
        if pending or "loop" in scopes:
            mask[idx] = True
        events = [(m.start(), "kw") for m in RE_LOOP_KW.finditer(line)]
        events += [(i, c) for i, c in enumerate(line) if c in "(){};"]
        for _, ev in sorted(events):
            if ev == "kw":
                pending, header_parens, header_done = True, 0, False
                mask[idx] = True
            elif ev == "(" and pending and not header_done:
                header_parens += 1
            elif ev == ")" and pending and not header_done:
                header_parens -= 1
                header_done = header_parens == 0
            elif ev == "{":
                scopes.append("loop" if pending and header_done else "other")
                pending = False
            elif ev == "}":
                if scopes:
                    scopes.pop()
            elif ev == ";" and pending and header_done:
                pending = False  # single-statement loop body ended
    return mask


def lint_file(path: Path, rel: str) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.split("\n")
    code = strip_comments_and_strings(raw)
    findings: list[Finding] = []

    def report(lineno: int, rule: str, message: str) -> None:
        if not suppressed(raw_lines, lineno, rule):
            findings.append(Finding(path, lineno, rule, message))

    in_model = any(rel.startswith(d + "/") or rel == d for d in MODEL_DIRS)
    rng_home = RNG_HOME.search(rel) is not None

    # Collect names declared as unordered containers (incl. members `name_`).
    unordered_names = set()
    joined = "\n".join(code)
    for m in RE_UNORDERED_DECL.finditer(joined):
        unordered_names.add(m.group("name"))

    for idx, line in enumerate(code, start=1):
        if not rng_home:
            if RE_RAND.search(line):
                report(idx, "rng-outside-common",
                       "std::rand/srand/random_device: use common/rng so runs "
                       "are reproducible from --seed")
            if RE_TIME_SEED.search(line):
                report(idx, "rng-outside-common",
                       "time-seeded RNG: seed from the scenario/config seed, "
                       "never from the clock")
        if RE_NEW.search(line) and not RE_PLACEMENT_NEW.search(line):
            report(idx, "naked-new",
                   "naked new: use std::make_unique/make_shared or a "
                   "container")
        if RE_DELETE.search(line):
            report(idx, "naked-new",
                   "naked delete: ownership belongs to smart pointers")
        if in_model and RE_FLOAT.search(line):
            report(idx, "float-in-model",
                   "float in model/solver code: the numeric story is "
                   "double-only (LP pivots and certificates assume it)")
        for fm in RE_RANGE_FOR.finditer(line):
            expr = fm.group("expr").strip()
            base = re.split(r"[.\->\[(]", expr, maxsplit=1)[0].strip().lstrip("*&")
            if base in unordered_names:
                report(idx, "unordered-iteration",
                       f"iteration over unordered container '{base}': bucket "
                       "order is layout-dependent; sort keys first or use "
                       "std::map")

    # Dense element-wise scans on the solver hot path (hot files only).
    if rel in HOT_KERNEL_FILES:
        dense_decl: dict[str, int] = {}
        for idx, line in enumerate(code, start=1):
            for dm in RE_DENSE_DECL.finditer(line):
                dense_decl.setdefault(dm.group("name"), idx)
        live = {
            name: decl
            for name, decl in dense_decl.items()
            # A waiver on the declaration covers every access of the name.
            if not suppressed(raw_lines, decl, "dense-scan-in-kernel")
        }
        if live:
            access = re.compile(
                r"\b(?P<name>" + "|".join(map(re.escape, sorted(live))) +
                r")\s*\(")
            mask = loop_line_mask(code)
            for idx, line in enumerate(code, start=1):
                if not mask[idx - 1]:
                    continue
                for am in access.finditer(line):
                    name = am.group("name")
                    if dense_decl.get(name) == idx:
                        continue  # the declaration's own constructor call
                    if re.match(r"[^()]*\)\s*=(?!=)", line[am.end():]):
                        continue  # plain write: assembly/setup, not a scan
                    report(idx, "dense-scan-in-kernel",
                           f"element-wise read of dense Matrix '{name}' in a "
                           "loop on the solver hot path: walk the CSR/CSC "
                           "arrays (lp/sparse_matrix.h) or add a deliberate "
                           "waiver")

    # TODO tagging is checked on raw lines: TODOs live in comments.
    for idx, line in enumerate(raw_lines, start=1):
        if RE_TODO.search(line) and not RE_TODO_TAGGED.search(line):
            if SUPPRESS not in line:  # suppression text mentions no TODO rule
                report(idx, "todo-tag",
                       "untagged TODO/FIXME: write TODO(#<issue>): so it is "
                       "trackable")
    return findings


def iter_sources(root: Path, paths: list[str]) -> list[tuple[Path, str]]:
    targets = paths if paths else ["src", "bench"]
    files: list[tuple[Path, str]] = []
    for t in targets:
        p = (root / t) if not Path(t).is_absolute() else Path(t)
        if p.is_file():
            files.append((p, str(p.relative_to(root)) if p.is_relative_to(root) else str(p)))
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in CXX_SUFFIXES and f.is_file():
                    files.append((f, str(f.relative_to(root))))
        else:
            print(f"mecsched_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


# --- self test -------------------------------------------------------------

SELF_TEST_CASES = [
    # (rule expected to fire, relative path to pretend, snippet)
    ("rng-outside-common", "src/assign/x.cpp",
     "int r = std::rand();\n"),
    ("rng-outside-common", "src/exec/x.cpp",
     "std::mt19937 gen(std::chrono::steady_clock::now().time_since_epoch()"
     ".count());\n"),
    ("unordered-iteration", "src/cli/x.cpp",
     "std::unordered_map<int, double> table;\n"
     "for (const auto& kv : table) csv << kv.first;\n"),
    ("naked-new", "src/obs/x.cpp",
     "auto* p = new Widget();\n"),
    ("naked-new", "src/obs/x.cpp",
     "delete ptr;\n"),
    ("float-in-model", "src/lp/x.cpp",
     "float tolerance = 0.1f;\n"),
    ("todo-tag", "src/mec/x.cpp",
     "// TODO: make this faster\n"),
    ("dense-scan-in-kernel", "src/lp/simplex.cpp",
     "Matrix a_;\n"
     "void f() {\n"
     "  for (std::size_t r = 0; r < m; ++r) dj -= y[r] * a_(r, j);\n"
     "}\n"),
    ("dense-scan-in-kernel", "src/lp/interior_point.cpp",
     "Matrix mmat(m, m);\n"
     "while (running) {\n"
     "  acc += mmat(i, j) * d[j];\n"
     "}\n"),
]

SELF_TEST_CLEAN = [
    ("src/assign/x.cpp", "double r = rng.uniform();\n"),
    ("src/common/rng.cpp", "std::random_device seed_source;\n"),
    ("src/cli/x.cpp",
     "std::unordered_map<int, double> table;\n"
     "// lint:allow-unordered-iteration -- keys sorted below.\n"
     "for (const auto& kv : table) keys.push_back(kv.first);\n"),
    ("src/obs/x.cpp", "auto p = std::make_unique<Widget>();\n"),
    ("src/cli/x.cpp", "float ui_scale = 1.0f;\n"),  # float fine outside model
    ("src/mec/x.cpp", "// TODO(#42): make this faster\n"),
    ("src/lp/x.cpp", "// a comment mentioning float and new is fine\n"),
    ("src/lp/x.cpp", 'log("string with float and new words");\n'),
    # dense-scan-in-kernel: per-line waiver on an intentional dense fallback.
    ("src/lp/simplex.cpp",
     "Matrix a_;\n"
     "void f() {\n"
     "  for (std::size_t r = 0; r < m; ++r) {\n"
     "    // lint:allow-dense-scan-in-kernel -- dense fallback path.\n"
     "    dj -= y[r] * a_(r, j);\n"
     "  }\n"
     "}\n"),
    # dense-scan-in-kernel: declaration-site waiver covers all accesses.
    ("src/lp/simplex.cpp",
     "// lint:allow-dense-scan-in-kernel -- Gauss-Jordan work matrix.\n"
     "Matrix bmat(m, m);\n"
     "for (std::size_t c = 0; c < m; ++c) piv += bmat(r, c);\n"),
    # dense-scan-in-kernel: writes are assembly, not scans.
    ("src/lp/simplex.cpp",
     "Matrix a_;\n"
     "for (std::size_t r = 0; r < m; ++r) a_(r, slack) = 1.0;\n"),
    # dense-scan-in-kernel: reads outside loops are spot reads.
    ("src/lp/simplex.cpp",
     "Matrix a_;\n"
     "double v = a_(0, 1);\n"),
    # dense-scan-in-kernel: only the hot kernel files are watched.
    ("src/lp/cholesky.cpp",
     "Matrix m_;\n"
     "for (std::size_t r = 0; r < n; ++r) x += m_(r, r);\n"),
]


def self_test() -> int:
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        for rule, rel, snippet in SELF_TEST_CASES:
            f = root / rel
            f.parent.mkdir(parents=True, exist_ok=True)
            f.write_text(snippet)
            found = lint_file(f, rel)
            if not any(x.rule == rule for x in found):
                print(f"SELF-TEST FAIL: expected [{rule}] to fire on:\n"
                      f"{snippet}", file=sys.stderr)
                failures += 1
        for rel, snippet in SELF_TEST_CLEAN:
            f = root / rel
            f.parent.mkdir(parents=True, exist_ok=True)
            f.write_text(snippet)
            found = lint_file(f, rel)
            if found:
                print(f"SELF-TEST FAIL: expected clean, got "
                      f"{[str(x) for x in found]} on:\n{snippet}",
                      file=sys.stderr)
                failures += 1
    if failures:
        print(f"mecsched_lint self-test: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print("mecsched_lint self-test: all rules fire and all waivers hold")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded rule fixtures and exit")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src/ bench/)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = Path(args.root).resolve()
    findings: list[Finding] = []
    files = iter_sources(root, args.paths)
    for path, rel in files:
        findings.extend(lint_file(path, rel))

    for f in findings:
        print(f)
    if findings:
        print(f"mecsched_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"mecsched_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
