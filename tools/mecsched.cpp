// mecsched — command-line front end of the library.
//
//   mecsched generate --tasks 100 --out scenario.json
//   mecsched assign   --scenario scenario.json --algorithm lp-hta --out plan.json
//   mecsched evaluate --scenario scenario.json --plan plan.json
//   mecsched simulate --scenario scenario.json --plan plan.json --contention
//   mecsched compare  --scenario scenario.json
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return mecsched::cli::run(args, std::cout, std::cerr);
}
