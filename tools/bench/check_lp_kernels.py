#!/usr/bin/env python3
"""Gate the sparse LP kernel benchmark against its checked-in baseline.

Usage:
    check_lp_kernels.py RESULT_JSON [BASELINE_JSON]

RESULT_JSON is the BENCH_lp_kernels.json emitted by build/bench/lp_kernels;
BASELINE_JSON defaults to bench/lp_kernels_baseline.json next to this repo.

Fails (exit 1) when:
  * the sparse and dense kernels disagreed on any assignment, or
  * a measured sparse/dense speedup regresses more than 20% below the
    baseline floor (the floors are already generous, so this catches the
    sparse path silently degenerating, not machine noise).
"""

import json
import pathlib
import sys

REGRESSION_BUDGET = 0.8  # fail below 80% of the baseline floor


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    result_path = pathlib.Path(argv[1])
    baseline_path = (
        pathlib.Path(argv[2])
        if len(argv) == 3
        else pathlib.Path(__file__).resolve().parents[2]
        / "bench"
        / "lp_kernels_baseline.json"
    )
    result = json.loads(result_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    ok = True
    if not result.get("assignments_identical", False):
        print("FAIL: sparse and dense kernels produced different assignments")
        ok = False

    for engine, key in (("ipm", "ipm_speedup"), ("simplex", "simplex_speedup")):
        measured = float(result[engine]["speedup"])
        floor = float(baseline[key]) * REGRESSION_BUDGET
        verdict = "ok" if measured >= floor else "FAIL"
        print(
            f"{verdict}: {engine} sparse/dense speedup {measured:.2f}x "
            f"(floor {floor:.2f}x = baseline {baseline[key]}x * "
            f"{REGRESSION_BUDGET})"
        )
        if measured < floor:
            ok = False

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
