#!/usr/bin/env python3
"""Gate a mecsched.bench.v1 telemetry file against its checked-in baseline.

Usage:
    trajectory.py RESULT_JSON [BASELINE_JSON]
    trajectory.py --self-test

RESULT_JSON is the BENCH_<name>.json a bench binary emits (schema
"mecsched.bench.v1"; see bench/bench_common.h). BASELINE_JSON defaults to
bench/baselines/<bench>.json, resolved from the "bench" field of the
result. The baseline holds a list of gate specs:

    {
      "bench": "lp_kernels",
      "gates": [
        {"metric": "values.ipm_speedup",
         "type": "min_fraction_of", "baseline": 25.0, "fraction": 0.8},
        {"metric": "values.overhead_fraction", "type": "max", "limit": 0.02},
        {"metric": "flags.assignments_identical",
         "type": "equals", "expect": true}
      ]
    }

Gate types:
    min              value >= limit
    max              value <= limit
    equals           value == expect (numbers, bools or strings)
    min_fraction_of  value >= baseline * fraction (regression floor: the
                     baseline is the recorded level, the fraction is the
                     tolerated regression — 0.8 tolerates a 20% drop)

"metric" is a dotted path into the result document. Exits 1 when the
schema is wrong, a metric is missing, or any gate fails — one ok/FAIL
line per gate either way, so CI logs show the whole trajectory.
"""

import json
import pathlib
import sys

SCHEMA = "mecsched.bench.v1"
REQUIRED_KEYS = ("schema", "bench", "wall_seconds", "values", "flags",
                 "counters", "windows", "rates")


def lookup(doc, dotted):
    """Resolve a dotted path; returns (found, value)."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def validate_schema(result):
    """Returns a list of problems (empty = valid)."""
    problems = []
    if not isinstance(result, dict):
        return ["result is not a JSON object"]
    if result.get("schema") != SCHEMA:
        problems.append(
            f"schema is {result.get('schema')!r}, want {SCHEMA!r}")
    for key in REQUIRED_KEYS:
        if key not in result:
            problems.append(f"missing required key {key!r}")
    for key in ("values", "flags", "counters", "windows", "rates"):
        if key in result and not isinstance(result[key], dict):
            problems.append(f"{key!r} is not an object")
    return problems


def check_gate(result, gate):
    """Returns (ok, description) for one gate spec."""
    metric = gate.get("metric", "<unspecified>")
    found, value = lookup(result, metric)
    if not found:
        return False, f"{metric} missing from result"
    kind = gate.get("type")
    if kind == "min":
        limit = float(gate["limit"])
        return (isinstance(value, (int, float)) and value >= limit,
                f"{metric} = {value} (min {limit})")
    if kind == "max":
        limit = float(gate["limit"])
        return (isinstance(value, (int, float)) and value <= limit,
                f"{metric} = {value} (max {limit})")
    if kind == "equals":
        expect = gate["expect"]
        return value == expect, f"{metric} = {value!r} (expect {expect!r})"
    if kind == "min_fraction_of":
        floor = float(gate["baseline"]) * float(gate["fraction"])
        return (isinstance(value, (int, float)) and value >= floor,
                f"{metric} = {value} (floor {floor:g} = "
                f"baseline {gate['baseline']} * {gate['fraction']})")
    return False, f"{metric}: unknown gate type {kind!r}"


def run_gates(result, baseline):
    ok = True
    problems = validate_schema(result)
    for p in problems:
        print(f"FAIL: schema: {p}")
        ok = False
    want_bench = baseline.get("bench")
    if want_bench and result.get("bench") != want_bench:
        print(f"FAIL: baseline is for {want_bench!r}, "
              f"result is {result.get('bench')!r}")
        ok = False
    gates = baseline.get("gates", [])
    if not gates:
        print("FAIL: baseline has no gates")
        ok = False
    for gate in gates:
        gate_ok, description = check_gate(result, gate)
        print(f"{'ok' if gate_ok else 'FAIL'}: {description}")
        ok = ok and gate_ok
    return ok


def self_test():
    doc = {
        "schema": SCHEMA,
        "bench": "demo",
        "wall_seconds": 1.5,
        "values": {"speedup": 10.0, "overhead": 0.01},
        "flags": {"identical": True},
        "counters": {"solves": 4},
        "windows": {},
        "rates": {},
    }
    cases = [
        ({"metric": "values.speedup", "type": "min", "limit": 5.0}, True),
        ({"metric": "values.speedup", "type": "min", "limit": 11.0}, False),
        ({"metric": "values.overhead", "type": "max", "limit": 0.02}, True),
        ({"metric": "values.overhead", "type": "max", "limit": 0.001}, False),
        ({"metric": "flags.identical", "type": "equals", "expect": True},
         True),
        ({"metric": "flags.identical", "type": "equals", "expect": False},
         False),
        ({"metric": "values.speedup", "type": "min_fraction_of",
          "baseline": 10.0, "fraction": 0.8}, True),
        ({"metric": "values.speedup", "type": "min_fraction_of",
          "baseline": 20.0, "fraction": 0.8}, False),
        ({"metric": "values.absent", "type": "min", "limit": 0.0}, False),
        ({"metric": "values.speedup", "type": "bogus"}, False),
    ]
    ok = True
    for gate, expect in cases:
        got, description = check_gate(doc, gate)
        if got != expect:
            print(f"self-test FAIL: {gate} -> {got}, want {expect} "
                  f"({description})")
            ok = False
    if validate_schema(doc):
        print("self-test FAIL: valid doc rejected")
        ok = False
    bad = dict(doc, schema="nope")
    del bad["windows"]
    problems = validate_schema(bad)
    if len(problems) != 2:
        print(f"self-test FAIL: bad doc problems = {problems}")
        ok = False
    if not run_gates(doc, {"bench": "demo", "gates": [cases[0][0]]}):
        print("self-test FAIL: passing baseline rejected")
        ok = False
    if run_gates(doc, {"bench": "other", "gates": [cases[0][0]]}):
        print("self-test FAIL: bench-name mismatch accepted")
        ok = False
    print("self-test " + ("ok" if ok else "FAILED"))
    return 0 if ok else 1


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    result = json.loads(pathlib.Path(argv[1]).read_text())
    if len(argv) == 3:
        baseline_path = pathlib.Path(argv[2])
    else:
        bench = result.get("bench", "") if isinstance(result, dict) else ""
        baseline_path = (pathlib.Path(__file__).resolve().parents[2]
                         / "bench" / "baselines" / f"{bench}.json")
        if not baseline_path.is_file():
            print(f"FAIL: no baseline at {baseline_path} "
                  f"(bench {bench!r})")
            return 1
    baseline = json.loads(baseline_path.read_text())
    return 0 if run_gates(result, baseline) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
